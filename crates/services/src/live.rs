//! Wall-clock driver around the deterministic replica cores.
//!
//! The simulator advances [`ReplicaCore`]s with virtual time; the wire
//! subsystem (`conprobe-wire`) needs the *same* storage semantics on real
//! time, serving concurrent TCP clients. [`LiveCluster`] is that bridge:
//! a thread-safe, I/O-free replica group whose notion of "now" is
//! whatever nanosecond count the caller passes in. The TCP server feeds
//! it wall-clock nanoseconds (and runs a ticker thread for anti-entropy);
//! unit tests feed it hand-picked instants and get fully deterministic
//! behaviour — the same trick the sim plays, inverted.
//!
//! **Keyspace sharding.** The cluster hosts [`LiveConfig::shards`]
//! independent copies of the service topology, one per keyspace shard,
//! with a consistent-hash [`ShardRing`] mapping every `u32` key onto a
//! shard (see [`crate::shard`]). Each shard is a full replica group with
//! its own replication queue and anti-entropy schedule, so unrelated
//! keys never contend on a lock; within a shard, every key gets its own
//! [`ReplicaCore`] per replica (created on first touch), so each key is
//! a fully isolated logical object with exactly the single-object
//! semantics the paper measures — a write to one key is never visible
//! to readers of another, even when the ring co-locates them. The
//! legacy un-keyed [`LiveCluster::write`]/[`LiveCluster::read`] API is
//! key 0 of the keyed API; with `shards: 1` the cluster is byte-for-byte
//! the pre-sharding one.
//!
//! Fidelity note: the live driver reuses the catalog's per-replica
//! [`OrderingPolicy`](conprobe_store::OrderingPolicy), replication-delay
//! distribution, anti-entropy period, and canonicalization flags, but
//! serves every read from the policy-ordered snapshot (the sim's
//! front-end caches, secondary indexes and ranking pipelines stay
//! sim-only). For live experiments that must *exhibit* staleness on
//! demand, [`LiveConfig::stale_window`] pins one replica behind a
//! bounded-lag read cache — a deliberately seeded anomaly window the
//! probe pipeline is expected to detect. The pin applies to that replica
//! in *every* shard, so keyed and un-keyed probes see the same anomaly.

use crate::catalog::{topology, ServiceKind};
use crate::quorum::{stored_post_from_payload, stored_post_to_payload};
use crate::replica_node::{DelayDist, WriteMode};
use crate::shard::ShardRing;
use conprobe_json::frame;
use conprobe_sim::net::Region;
use conprobe_sim::{SimRng, SimTime};
use conprobe_store::{AffinityMap, OrderingPolicy, Post, PostId, ReplicaCore, StoredPost};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A deliberately seeded staleness window: the chosen replica serves
/// reads from a snapshot refreshed at most once per `lag_nanos`, so a
/// quick read-after-write against it misses the write — a bounded,
/// reproducible read-your-writes/monotonic-reads anomaly source.
#[derive(Debug, Clone, Copy)]
pub struct StaleWindow {
    /// Index of the replica to pin (into the catalog topology's order).
    pub replica: usize,
    /// Maximum snapshot age before a read refreshes it.
    pub lag_nanos: u64,
}

/// Configuration for a live (wall-clock) service deployment.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Which catalog service to host.
    pub kind: ServiceKind,
    /// Seed for the replication-delay sampling stream.
    pub seed: u64,
    /// Optional seeded staleness window (see [`StaleWindow`]).
    pub stale_window: Option<StaleWindow>,
    /// Keyspace shards (independent replica groups); clamped to ≥ 1.
    pub shards: usize,
}

impl LiveConfig {
    /// A single-shard deployment — the pre-sharding behaviour.
    pub fn single(kind: ServiceKind, seed: u64) -> Self {
        LiveConfig { kind, seed, stale_window: None, shards: 1 }
    }
}

/// What a crashed replica's rejoin accomplished (see
/// [`LiveCluster::recover_replica`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejoinReport {
    /// Verified `cpj1` catch-up frames applied across all peers/shards.
    pub frames: u64,
    /// Peers that contributed a verified stream.
    pub peers: u64,
    /// Highest peer commit watermark (applied-post count) heard.
    pub watermark: u64,
    /// Posts newly applied at the recovering replica.
    pub applied: u64,
    /// Running FNV-1a over every verified frame line, in stream order —
    /// the byte-determinism witness (same seed, same hash).
    pub stream_hash: u64,
    /// True for a weak-arm cold rejoin: no state transfer ran, the
    /// replica restarts empty and reconverges via replication pushes
    /// and anti-entropy.
    pub cold: bool,
}

/// One replication push in flight between replicas of one shard, due at
/// `deliver_at` nanoseconds on the caller's clock.
struct PendingRepl {
    deliver_at: u64,
    target: usize,
    key: u32,
    posts: Vec<StoredPost>,
}

/// Per-key `(snapshot, taken_at_nanos)` cache for a stale-pinned replica.
type StaleCache = HashMap<u32, (Arc<[PostId]>, u64)>;

struct LiveReplica {
    /// One deterministic core per keyspace key this replica has seen,
    /// created on first touch with the replica's ordering policy. Keys
    /// are isolated objects: cores never exchange posts.
    cores: HashMap<u32, ReplicaCore>,
    ordering: OrderingPolicy,
    repl_delay: DelayDist,
    anti_entropy_nanos: Option<u64>,
    canonicalize_on_anti_entropy: bool,
    next_anti_entropy: u64,
    /// Per-key read caches for a stale-pinned replica (`None` when the
    /// replica is not pinned).
    stale_cache: Option<StaleCache>,
}

impl LiveReplica {
    fn core_mut(&mut self, key: u32) -> &mut ReplicaCore {
        let ordering = self.ordering;
        self.cores.entry(key).or_insert_with(|| ReplicaCore::new(ordering))
    }
}

/// One keyspace shard: a full replica group with its own replication
/// queue. Shards never share locks, so keyed traffic scales across them.
struct ShardState {
    replicas: Vec<Mutex<LiveReplica>>,
    /// Replication pushes waiting out their sampled WAN delay.
    in_flight: Mutex<Vec<PendingRepl>>,
}

/// A thread-safe wall-clock replica group hosting one catalog service
/// over a consistent-hash-sharded keyspace.
///
/// All methods take `now_nanos` — nanoseconds on the caller's clock
/// (monotonic since server start, or fabricated in tests). Methods are
/// safe to call from many threads; internal locks are held only for the
/// duration of one storage operation, and the common no-work
/// [`LiveCluster::tick`] is a single atomic load.
pub struct LiveCluster {
    kind: ServiceKind,
    regions: Vec<Region>,
    affinity: AffinityMap,
    shards: Vec<ShardState>,
    ring: ShardRing,
    rng: Mutex<SimRng>,
    stale: Option<StaleWindow>,
    /// Majority-synchronous writes (the strong control arms): a write is
    /// applied at every replica before it is acknowledged, so the live
    /// group is linearizable — no replication queue, no anomaly windows.
    sync_writes: bool,
    /// Ordered-log view tracking for the PBFT arm (`kind == Pbft`): the
    /// current view (`leader = view mod n`), the number of completed
    /// view changes, and which replicas are currently down. A leader
    /// kill rotates the view past every down replica, exactly like the
    /// sim protocol's suspicion/rotation — the wall-clock group's writes
    /// are already synchronous, so the *observable* effect of a live
    /// view change is the leadership handoff the narration reports.
    pbft_view: AtomicU64,
    pbft_view_changes: AtomicU64,
    down: Vec<AtomicBool>,
    /// Earliest instant at which any shard has deliverable work (a due
    /// replication push or anti-entropy round). The hot-path `tick`
    /// compares against this and returns without taking any lock when
    /// nothing is due — the sharded serving path calls `tick` on every
    /// operation, so this check is the difference between an atomic load
    /// and a full queue sweep per request.
    next_due_nanos: AtomicU64,
    /// Shared empty snapshot served for keys with no traffic yet — the
    /// common case when a load sweep cycles more keys than were seeded.
    empty: Arc<[PostId]>,
}

impl LiveCluster {
    /// Deploys `config.kind`'s catalog topology onto wall-clock time,
    /// once per keyspace shard.
    pub fn new(config: &LiveConfig) -> Self {
        let topo = topology(config.kind);
        let shard_count = config.shards.max(1);
        let mut next_due = u64::MAX;
        let shards = (0..shard_count)
            .map(|_| {
                let replicas = topo
                    .replicas
                    .iter()
                    .enumerate()
                    .map(|(i, (_, params))| {
                        let pinned = config.stale_window.is_some_and(|w| w.replica == i);
                        let anti = params.anti_entropy.map(|d| d.as_nanos());
                        if let Some(first) = anti {
                            next_due = next_due.min(first);
                        }
                        Mutex::new(LiveReplica {
                            cores: HashMap::new(),
                            ordering: params.ordering,
                            repl_delay: params.repl_delay.clone(),
                            anti_entropy_nanos: anti,
                            canonicalize_on_anti_entropy: params.canonicalize_on_anti_entropy,
                            next_anti_entropy: anti.unwrap_or(0),
                            stale_cache: pinned.then(HashMap::new),
                        })
                    })
                    .collect();
                ShardState { replicas, in_flight: Mutex::new(Vec::new()) }
            })
            .collect();
        let sync_writes =
            topo.replicas.iter().all(|(_, p)| p.write_mode == WriteMode::SyncMajority);
        let replica_count = topo.replicas.len();
        LiveCluster {
            kind: config.kind,
            regions: topo.replicas.iter().map(|(r, _)| *r).collect(),
            affinity: topo.affinity,
            shards,
            ring: ShardRing::new(shard_count),
            rng: Mutex::new(SimRng::new(config.seed).split("live.repl")),
            stale: config.stale_window,
            sync_writes,
            pbft_view: AtomicU64::new(1),
            pbft_view_changes: AtomicU64::new(0),
            down: (0..replica_count).map(|_| AtomicBool::new(false)).collect(),
            next_due_nanos: AtomicU64::new(next_due),
            empty: Arc::from(Vec::new()),
        }
    }

    /// Which service this cluster hosts.
    pub fn kind(&self) -> ServiceKind {
        self.kind
    }

    /// Number of replicas per shard.
    pub fn replica_count(&self) -> usize {
        self.regions.len()
    }

    /// Number of keyspace shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `key` — deterministic consistent hashing, the
    /// same map every client and server computes.
    pub fn shard_for_key(&self, key: u32) -> usize {
        self.ring.shard_for_key(key)
    }

    /// The region hosting replica `idx` (of every shard).
    pub fn replica_region(&self, idx: usize) -> Region {
        self.regions[idx]
    }

    /// The replica index a client in `region` is routed to — the same
    /// affinity the sim's front doors use.
    pub fn replica_for(&self, region: Region) -> usize {
        self.affinity.replica_for(region)
    }

    /// Accepts an un-keyed write — key 0 of the sharded keyspace (the
    /// single-object workload the paper's probes drive).
    pub fn write(&self, region: Region, post: Post, now_nanos: u64) -> PostId {
        self.write_keyed(region, 0, post, now_nanos)
    }

    /// Accepts a write for `key` at `region`'s replica of the owning
    /// shard. Local-ack services (all four measured ones) schedule
    /// asynchronous replication pushes to every peer with per-peer
    /// sampled delays; the majority-synchronous quorum service instead
    /// applies the write at every replica before returning, so the
    /// acknowledgement implies global visibility.
    pub fn write_keyed(&self, region: Region, key: u32, post: Post, now_nanos: u64) -> PostId {
        self.tick(now_nanos);
        let shard = &self.shards[self.ring.shard_for_key(key)];
        let origin = self.replica_for(region);
        let id = post.id;
        let stored = {
            let mut rep = shard.replicas[origin].lock().unwrap();
            rep.core_mut(key).apply_new(post, SimTime::from_nanos(now_nanos)).cloned()
        };
        if self.sync_writes {
            if let Some(stored) = stored {
                // Lock in index order (the anti-entropy discipline) so a
                // concurrent writer at another front door cannot deadlock.
                for target in 0..shard.replicas.len() {
                    if target != origin {
                        let mut rep = shard.replicas[target].lock().unwrap();
                        rep.core_mut(key).apply_replicated(stored.clone());
                    }
                }
            }
            return id;
        }
        if let Some(stored) = stored {
            let repl_delay = shard.replicas[origin].lock().unwrap().repl_delay.clone();
            let mut rng = self.rng.lock().unwrap();
            let mut pushes = Vec::new();
            let mut earliest = u64::MAX;
            for target in 0..shard.replicas.len() {
                if target != origin {
                    let delay = repl_delay.sample(&mut rng).as_nanos();
                    let deliver_at = now_nanos.saturating_add(delay);
                    earliest = earliest.min(deliver_at);
                    pushes.push(PendingRepl {
                        deliver_at,
                        target,
                        key,
                        posts: vec![stored.clone()],
                    });
                }
            }
            drop(rng);
            shard.in_flight.lock().unwrap().extend(pushes);
            self.next_due_nanos.fetch_min(earliest, Ordering::AcqRel);
        }
        id
    }

    /// Serves an un-keyed read — key 0 of the sharded keyspace.
    pub fn read(&self, region: Region, now_nanos: u64) -> Vec<PostId> {
        self.read_keyed(region, 0, now_nanos).to_vec()
    }

    /// Serves a read for `key` at `region`'s replica of the owning shard,
    /// from the policy-ordered snapshot — or, for a stale-pinned replica,
    /// from its bounded-age cached snapshot. The returned snapshot is the
    /// replica's shared `Arc` slice: no copy on the serving hot path.
    pub fn read_keyed(&self, region: Region, key: u32, now_nanos: u64) -> Arc<[PostId]> {
        self.tick(now_nanos);
        let shard = &self.shards[self.ring.shard_for_key(key)];
        let idx = self.replica_for(region);
        let mut guard = shard.replicas[idx].lock().unwrap();
        let rep = &mut *guard;
        match (&mut rep.stale_cache, self.stale) {
            (Some(caches), Some(w)) => {
                // Per-key cache: primed empty at cluster-start age, so
                // the first in-window reads of a key serve the cached
                // (empty) snapshot exactly like the un-keyed pin did.
                let (cache, taken_at) =
                    caches.entry(key).or_insert_with(|| (Arc::from(Vec::new()), 0));
                if now_nanos.saturating_sub(*taken_at) >= w.lag_nanos {
                    *cache = match rep.cores.get(&key) {
                        Some(core) => core.snapshot(),
                        None => Arc::clone(&self.empty),
                    };
                    *taken_at = now_nanos;
                }
                Arc::clone(cache)
            }
            _ => match rep.cores.get(&key) {
                Some(core) => core.snapshot(),
                None => Arc::clone(&self.empty),
            },
        }
    }

    /// Delivers due replication pushes and runs due anti-entropy rounds
    /// on every shard. Idempotent; safe to call from a ticker thread
    /// *and* inline from reads/writes (each operation calls it so
    /// single-threaded tests never need a ticker). When nothing is due —
    /// the overwhelmingly common case on a serving hot path — this is
    /// one relaxed atomic load.
    pub fn tick(&self, now_nanos: u64) {
        if now_nanos < self.next_due_nanos.load(Ordering::Acquire) {
            return;
        }
        self.tick_full(now_nanos);
    }

    fn tick_full(&self, now_nanos: u64) {
        // Park the horizon at MAX while sweeping; concurrent writers
        // `fetch_min` their new push's instant, so a push scheduled
        // mid-sweep can lower it again and is never lost.
        self.next_due_nanos.store(u64::MAX, Ordering::Release);
        let mut horizon = u64::MAX;
        for shard_idx in 0..self.shards.len() {
            let shard = &self.shards[shard_idx];
            // Deliver replication pushes whose sampled delay has elapsed.
            let due: Vec<PendingRepl> = {
                let mut inflight = shard.in_flight.lock().unwrap();
                let mut due = Vec::new();
                let mut i = 0;
                while i < inflight.len() {
                    if inflight[i].deliver_at <= now_nanos {
                        due.push(inflight.swap_remove(i));
                    } else {
                        horizon = horizon.min(inflight[i].deliver_at);
                        i += 1;
                    }
                }
                due
            };
            for push in due {
                let mut rep = shard.replicas[push.target].lock().unwrap();
                let core = rep.core_mut(push.key);
                for post in push.posts {
                    core.apply_replicated(post);
                }
            }
            // Anti-entropy: pairwise digest exchange, exactly the sim's
            // protocol but executed synchronously at the due instant.
            for idx in 0..shard.replicas.len() {
                let due = {
                    let rep = shard.replicas[idx].lock().unwrap();
                    match rep.anti_entropy_nanos {
                        Some(_) => rep.next_anti_entropy <= now_nanos,
                        None => false,
                    }
                };
                if due {
                    self.anti_entropy_round(shard_idx, idx, now_nanos);
                }
                let rep = shard.replicas[idx].lock().unwrap();
                if rep.anti_entropy_nanos.is_some() {
                    horizon = horizon.min(rep.next_anti_entropy);
                }
            }
        }
        self.next_due_nanos.fetch_min(horizon, Ordering::AcqRel);
    }

    /// One anti-entropy round initiated by replica `idx` of one shard:
    /// exchange digests with every peer, pull what's missing locally and
    /// push what the peer lacks.
    fn anti_entropy_round(&self, shard_idx: usize, idx: usize, now_nanos: u64) {
        let shard = &self.shards[shard_idx];
        for peer in 0..shard.replicas.len() {
            if peer == idx {
                continue;
            }
            // Lock in index order to rule out deadlock between
            // concurrent rounds.
            let (lo, hi) = if idx < peer { (idx, peer) } else { (peer, idx) };
            let mut first = shard.replicas[lo].lock().unwrap();
            let mut second = shard.replicas[hi].lock().unwrap();
            let (me, other) =
                if lo == idx { (&mut *first, &mut *second) } else { (&mut *second, &mut *first) };
            // Reconcile key by key over the union of both keyspaces —
            // cores belonging to different keys never exchange posts.
            let mut keys: Vec<u32> = me.cores.keys().copied().collect();
            for k in other.cores.keys() {
                if !me.cores.contains_key(k) {
                    keys.push(*k);
                }
            }
            for key in keys {
                let my_digest = me.core_mut(key).digest();
                let peer_digest = other.core_mut(key).digest();
                let mine = &mut me.cores.get_mut(&key).expect("core just touched");
                let theirs = &mut other.cores.get_mut(&key).expect("core just touched");
                for post in theirs.missing_from(&my_digest) {
                    mine.apply_replicated(post);
                }
                for post in mine.missing_from(&peer_digest) {
                    theirs.apply_replicated(post);
                }
            }
        }
        let mut rep = shard.replicas[idx].lock().unwrap();
        if rep.canonicalize_on_anti_entropy {
            for core in rep.cores.values_mut() {
                core.resequence_canonical();
            }
        }
        if let Some(period) = rep.anti_entropy_nanos {
            // Schedule from "now" so missed rounds (sparse traffic, no
            // ticker) don't replay in a burst.
            rep.next_anti_entropy = now_nanos.saturating_add(period);
        }
    }

    /// Whether writes are majority-synchronous (the quorum control arm).
    /// Decides the rejoin flavour: state transfer vs cold restart.
    pub fn sync_writes(&self) -> bool {
        self.sync_writes
    }

    /// Crashes replica `idx`: its in-memory state is wiped in every
    /// shard (a process crash loses everything), along with any stale
    /// read caches, and replication pushes still in flight *to* it are
    /// dropped — they were addressed to a process that no longer
    /// exists. For weak arms that lost window is a real divergence
    /// source (healed only where anti-entropy runs); the quorum arm
    /// repairs it wholesale at rejoin.
    pub fn crash_replica(&self, idx: usize) {
        for shard in &self.shards {
            {
                let mut rep = shard.replicas[idx].lock().unwrap();
                rep.cores.clear();
                if let Some(caches) = &mut rep.stale_cache {
                    caches.clear();
                }
            }
            shard.in_flight.lock().unwrap().retain(|p| p.target != idx);
        }
        if idx < self.down.len() {
            self.down[idx].store(true, Ordering::SeqCst);
        }
        if self.kind == ServiceKind::Pbft {
            self.rotate_view_past_down();
        }
    }

    /// Advances the pbft view until it lands on a live replica — each
    /// rotation step is one completed view change (suspicion at the
    /// surviving replicas, deterministic next-leader handoff).
    fn rotate_view_past_down(&self) {
        let n = self.replica_count() as u64;
        if n == 0 {
            return;
        }
        loop {
            let view = self.pbft_view.load(Ordering::SeqCst);
            let leader = (view % n) as usize;
            if !self.down[leader].load(Ordering::SeqCst) {
                return;
            }
            if self.down.iter().all(|d| d.load(Ordering::SeqCst)) {
                return; // nobody left to lead; avoid spinning forever
            }
            if self
                .pbft_view
                .compare_exchange(view, view + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.pbft_view_changes.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    /// The PBFT arm's current view number (1 at boot).
    pub fn pbft_view(&self) -> u64 {
        self.pbft_view.load(Ordering::SeqCst)
    }

    /// Completed live view changes (leader rotations past down replicas).
    pub fn pbft_view_changes(&self) -> u64 {
        self.pbft_view_changes.load(Ordering::SeqCst)
    }

    /// The PBFT arm's current leader index, or `None` for other services.
    pub fn pbft_leader(&self) -> Option<usize> {
        if self.kind != ServiceKind::Pbft || self.regions.is_empty() {
            return None;
        }
        Some((self.pbft_view.load(Ordering::SeqCst) % self.replica_count() as u64) as usize)
    }

    /// Rejoins a crashed replica. On the quorum arm this is the `cpj1`
    /// state-transfer protocol (the same checksummed record format the
    /// sim's [`QuorumReplica`](crate::quorum::QuorumReplica) streams):
    /// every peer serializes its per-key snapshots as framed records —
    /// keys in sorted order, shards and peers in index order, so the
    /// stream and its running hash are byte-deterministic — and the
    /// recovering replica verifies each whole stream (frame checksum +
    /// payload parse) before applying a single post from it. Weak arms
    /// rejoin cold: an empty replica reconverges through the ordinary
    /// replication and anti-entropy machinery, leaving exactly the
    /// anomaly window the probes are built to observe.
    pub fn recover_replica(&self, idx: usize) -> RejoinReport {
        if idx < self.down.len() {
            self.down[idx].store(false, Ordering::SeqCst);
        }
        if !self.sync_writes {
            return RejoinReport {
                frames: 0,
                peers: 0,
                watermark: 0,
                applied: 0,
                stream_hash: frame::FNV64_BASIS,
                cold: true,
            };
        }
        let mut report = RejoinReport {
            frames: 0,
            peers: 0,
            watermark: 0,
            applied: 0,
            stream_hash: frame::FNV64_BASIS,
            cold: false,
        };
        for peer in 0..self.replica_count() {
            if peer == idx {
                continue;
            }
            let mut peer_total = 0u64;
            for shard in &self.shards {
                // Pairwise index-ordered locking — the anti-entropy
                // discipline — so rejoin can overlap live quorum writes
                // without deadlock.
                let (lo, hi) = if idx < peer { (idx, peer) } else { (peer, idx) };
                let mut first = shard.replicas[lo].lock().unwrap();
                let mut second = shard.replicas[hi].lock().unwrap();
                let (me, other) = if lo == idx {
                    (&mut *first, &mut *second)
                } else {
                    (&mut *second, &mut *first)
                };
                let mut keys: Vec<u32> = other.cores.keys().copied().collect();
                keys.sort_unstable();
                for key in keys {
                    let posts = other.cores.get(&key).expect("key just listed").snapshot_posts();
                    peer_total += posts.len() as u64;
                    // Encode, then verify the whole framed stream before
                    // applying anything from it — a corrupt frame
                    // discards the stream, it never half-applies.
                    let lines: Vec<String> = posts
                        .iter()
                        .map(|p| frame::encode_record(&stored_post_to_payload(p)))
                        .collect();
                    let verified: Option<Vec<StoredPost>> = lines
                        .iter()
                        .map(|line| {
                            frame::decode_record(line)
                                .ok()
                                .and_then(|payload| stored_post_from_payload(payload).ok())
                        })
                        .collect();
                    let Some(decoded) = verified else { continue };
                    for line in &lines {
                        report.stream_hash = frame::fnv64_fold(report.stream_hash, line.as_bytes());
                    }
                    report.frames += lines.len() as u64;
                    let core = me.core_mut(key);
                    for post in decoded {
                        if core.apply_replicated(post) {
                            report.applied += 1;
                        }
                    }
                }
            }
            report.peers += 1;
            report.watermark = report.watermark.max(peer_total);
        }
        report
    }

    /// Total posts held by replica `idx`, summed across shards and keys
    /// (diagnostics).
    pub fn replica_len(&self, idx: usize) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let rep = s.replicas[idx].lock().unwrap();
                rep.cores.values().map(ReplicaCore::len).sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conprobe_sim::LocalTime;
    use conprobe_store::AuthorId;

    fn post(author: u32, seq: u32) -> Post {
        let id = PostId::new(AuthorId(author), seq);
        Post::new(id, format!("post {id}"), LocalTime::from_nanos(0))
    }

    const MS: u64 = 1_000_000;
    const SEC: u64 = 1_000_000_000;

    fn cluster(kind: ServiceKind, stale: Option<StaleWindow>) -> LiveCluster {
        LiveCluster::new(&LiveConfig { kind, seed: 7, stale_window: stale, shards: 1 })
    }

    fn sharded(kind: ServiceKind, shards: usize) -> LiveCluster {
        LiveCluster::new(&LiveConfig { kind, seed: 7, stale_window: None, shards })
    }

    #[test]
    fn blogger_is_read_your_writes_clean() {
        let c = cluster(ServiceKind::Blogger, None);
        for (i, region) in Region::AGENTS.iter().enumerate() {
            let id = c.write(*region, post(i as u32, 1), (i as u64 + 1) * MS);
            let seen = c.read(*region, (i as u64 + 1) * MS + 1);
            assert!(seen.contains(&id), "write must be immediately visible on one replica");
        }
    }

    #[test]
    fn replication_is_delayed_then_delivered() {
        // FB Feed has one replica per agent region (Tokyo is replica 1),
        // with a ≥ 60 ms replication delay floor.
        let c = cluster(ServiceKind::FacebookFeed, None);
        assert_eq!(c.replica_count(), 3);
        let id = c.write(Region::Oregon, post(0, 1), MS);
        let tokyo_now = c.read(Region::Tokyo, 2 * MS);
        assert!(!tokyo_now.contains(&id), "replication should not be instantaneous");
        // Far in the future every sampled delay has elapsed.
        let tokyo_later = c.read(Region::Tokyo, 60 * SEC);
        assert!(tokyo_later.contains(&id), "replication push must eventually deliver");
    }

    #[test]
    fn anti_entropy_reconciles_even_without_pushes() {
        let c = cluster(ServiceKind::GooglePlus, None);
        let id = c.write(Region::Oregon, post(1, 1), MS);
        // Google+ anti-entropy period is 6 s; by 20 s both the delayed
        // push and at least one anti-entropy round have run.
        let ireland = c.read(Region::Ireland, 20 * SEC);
        assert!(ireland.contains(&id));
    }

    #[test]
    fn stale_window_hides_a_fresh_write_then_reveals_it() {
        let c =
            cluster(ServiceKind::Blogger, Some(StaleWindow { replica: 0, lag_nanos: 500 * MS }));
        // Prime the cache at t=1ms (empty snapshot).
        assert!(c.read(Region::Oregon, MS).is_empty());
        let id = c.write(Region::Oregon, post(0, 1), 2 * MS);
        // Within the lag window the cached (empty) snapshot is served:
        // a read-your-writes violation by construction.
        assert!(!c.read(Region::Oregon, 3 * MS).contains(&id));
        // Once the window passes, the refreshed snapshot shows the write.
        assert!(c.read(Region::Oregon, 600 * MS).contains(&id));
    }

    #[test]
    fn quorum_writes_are_synchronously_visible_everywhere() {
        let c = cluster(ServiceKind::Quorum, None);
        assert_eq!(c.replica_count(), 3);
        let id = c.write(Region::Oregon, post(0, 1), MS);
        // No replication window: the ack implies global visibility, so a
        // cross-region read-after-write can never miss (the control-arm
        // property the four measured services lack — compare
        // `replication_is_delayed_then_delivered`).
        assert!(c.read(Region::Tokyo, MS + 1).contains(&id));
        assert!(c.read(Region::Ireland, MS + 2).contains(&id));
    }

    #[test]
    fn same_seed_same_replication_schedule() {
        let run = |seed| {
            let c = LiveCluster::new(&LiveConfig {
                kind: ServiceKind::FacebookFeed,
                seed,
                stale_window: None,
                shards: 1,
            });
            c.write(Region::Oregon, post(0, 1), MS);
            // Probe Tokyo visibility on a 1 ms grid; the delivery instant
            // is a pure function of the seed.
            (0..1_000).map(|i| c.read(Region::Tokyo, MS * i).len()).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds should move the delivery instant");
    }

    #[test]
    fn keys_route_to_their_own_shards_and_stay_isolated() {
        let c = sharded(ServiceKind::Blogger, 8);
        assert_eq!(c.shard_count(), 8);
        // Find two keys on different shards (the ring is deterministic,
        // so scan until a pair differs — guaranteed by the balance test
        // in `shard.rs`).
        let key_a = 0u32;
        let key_b = (1..1000u32)
            .find(|k| c.shard_for_key(*k) != c.shard_for_key(key_a))
            .expect("some key must land on another shard");
        let id_a = c.write_keyed(Region::Oregon, key_a, post(0, 1), MS);
        let id_b = c.write_keyed(Region::Oregon, key_b, post(1, 1), MS);
        let feed_a = c.read_keyed(Region::Oregon, key_a, 2 * MS);
        let feed_b = c.read_keyed(Region::Oregon, key_b, 2 * MS);
        assert!(feed_a.contains(&id_a) && !feed_a.contains(&id_b), "shard A sees only key A");
        assert!(feed_b.contains(&id_b) && !feed_b.contains(&id_a), "shard B sees only key B");
        // Same key, same shard, across independently built clusters with
        // different seeds: placement is seed-independent.
        let c2 = LiveCluster::new(&LiveConfig {
            kind: ServiceKind::Blogger,
            seed: 999,
            stale_window: None,
            shards: 8,
        });
        for key in 0..500u32 {
            assert_eq!(c.shard_for_key(key), c2.shard_for_key(key), "key {key}");
        }
    }

    #[test]
    fn keys_sharing_a_shard_are_still_isolated_objects() {
        let c = sharded(ServiceKind::Blogger, 4);
        let key_a = 0u32;
        let key_b = (1..10_000u32)
            .find(|k| c.shard_for_key(*k) == c.shard_for_key(key_a))
            .expect("some key must collide onto key 0's shard");
        let id = c.write_keyed(Region::Oregon, key_a, post(0, 1), MS);
        assert!(c.read_keyed(Region::Oregon, key_a, 2 * MS).contains(&id));
        // The co-located key never sees it — not immediately, and not
        // after every replication push and anti-entropy round has run.
        assert!(c.read_keyed(Region::Oregon, key_b, 2 * MS).is_empty());
        assert!(c.read_keyed(Region::Oregon, key_b, 120 * SEC).is_empty());
        assert!(c.read_keyed(Region::Tokyo, key_b, 120 * SEC).is_empty());
    }

    #[test]
    fn keyed_replication_matches_unkeyed_semantics_per_shard() {
        // A keyed write on a sharded FB Feed exhibits the same delayed
        // replication the un-keyed path shows: each shard is a faithful
        // copy of the topology.
        let c = sharded(ServiceKind::FacebookFeed, 4);
        let key = 42u32;
        let id = c.write_keyed(Region::Oregon, key, post(0, 1), MS);
        assert!(!c.read_keyed(Region::Tokyo, key, 2 * MS).contains(&id));
        assert!(c.read_keyed(Region::Tokyo, key, 60 * SEC).contains(&id));
        // And other shards never saw the write at all.
        let other = (0..1000u32)
            .find(|k| c.shard_for_key(*k) != c.shard_for_key(key))
            .expect("another shard");
        assert!(c.read_keyed(Region::Oregon, other, 60 * SEC).is_empty());
    }

    #[test]
    fn stale_window_pins_the_replica_in_every_shard() {
        let c = LiveCluster::new(&LiveConfig {
            kind: ServiceKind::Blogger,
            seed: 7,
            stale_window: Some(StaleWindow { replica: 0, lag_nanos: 500 * MS }),
            shards: 4,
        });
        for key in [0u32, 7, 19] {
            let t0 = MS + u64::from(key) * SEC;
            assert!(c.read_keyed(Region::Oregon, key, t0).is_empty(), "prime cache for {key}");
            let id = c.write_keyed(Region::Oregon, key, post(key, 1), t0 + MS);
            assert!(
                !c.read_keyed(Region::Oregon, key, t0 + 2 * MS).contains(&id),
                "key {key}: stale cache must hide the fresh write"
            );
            assert!(
                c.read_keyed(Region::Oregon, key, t0 + 600 * MS).contains(&id),
                "key {key}: expired cache must reveal it"
            );
        }
    }

    #[test]
    fn quorum_crash_then_rejoin_transfers_full_state() {
        let c = sharded(ServiceKind::Quorum, 4);
        assert!(c.sync_writes());
        for key in 0..12u32 {
            c.write_keyed(Region::Oregon, key, post(key, 1), MS + u64::from(key));
        }
        let before = c.replica_len(1);
        assert!(before >= 12, "sync writes land everywhere");
        c.crash_replica(1);
        assert_eq!(c.replica_len(1), 0, "a crash loses all in-memory state");
        let report = c.recover_replica(1);
        assert!(!report.cold);
        assert_eq!(report.peers, 2, "both surviving peers streamed");
        assert_eq!(report.applied as usize, before, "state transfer restores every post");
        assert_eq!(report.watermark, 12, "watermark is the peer's applied count");
        assert!(report.frames >= 24, "each peer streams all 12 posts");
        assert_eq!(c.replica_len(1), before);
        // Post-rejoin reads at the recovered front door are complete.
        for key in 0..12u32 {
            assert!(
                !c.read_keyed(Region::Tokyo, key, SEC).is_empty(),
                "key {key} visible after rejoin"
            );
        }
    }

    #[test]
    fn quorum_rejoin_stream_is_deterministic() {
        let run = || {
            let c = sharded(ServiceKind::Quorum, 4);
            for key in 0..8u32 {
                c.write_keyed(Region::Oregon, key, post(key, 1), MS + u64::from(key));
            }
            c.crash_replica(2);
            c.recover_replica(2)
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same writes, same framed stream, same hash");
        assert_ne!(a.stream_hash, frame::FNV64_BASIS, "a non-empty stream moved the hash");
    }

    #[test]
    fn pbft_leader_kill_rotates_the_view_to_the_next_live_replica() {
        let c = cluster(ServiceKind::Pbft, None);
        assert!(c.sync_writes(), "pbft writes apply synchronously everywhere");
        assert_eq!(c.pbft_view(), 1, "boot view");
        assert_eq!(c.pbft_leader(), Some(1), "view 1 leads at replica 1");
        // Killing a non-leader changes nothing.
        c.crash_replica(3);
        assert_eq!(c.pbft_view(), 1);
        assert_eq!(c.pbft_view_changes(), 0);
        // Killing the leader rotates to the next live replica.
        c.crash_replica(1);
        assert_eq!(c.pbft_view(), 2);
        assert_eq!(c.pbft_leader(), Some(2));
        assert_eq!(c.pbft_view_changes(), 1);
        // Killing the new leader skips the still-down replica 3.
        c.crash_replica(2);
        assert_eq!(c.pbft_leader(), Some(0), "view 4 skips dead replica 3");
        assert_eq!(c.pbft_view_changes(), 3, "two rotation steps counted");
        // Rejoin keeps the view where it landed; writes still work.
        c.recover_replica(1);
        c.recover_replica(2);
        c.recover_replica(3);
        let id = c.write(Region::Oregon, post(9, 1), MS);
        assert!(c.read(Region::Tokyo, 2 * MS).contains(&id));
    }

    #[test]
    fn non_pbft_arms_report_no_leader() {
        let c = cluster(ServiceKind::Quorum, None);
        assert_eq!(c.pbft_leader(), None);
        c.crash_replica(1);
        assert_eq!(c.pbft_view_changes(), 0, "quorum kills never rotate a view");
    }

    #[test]
    fn weak_arm_rejoins_cold_and_reconverges() {
        let c = cluster(ServiceKind::GooglePlus, None);
        let id = c.write(Region::Oregon, post(1, 1), MS);
        // Let replication land everywhere first.
        c.tick(60 * SEC);
        assert!(c.replica_len(1) > 0);
        c.crash_replica(1);
        let report = c.recover_replica(1);
        assert!(report.cold, "weak arms get no state transfer");
        assert_eq!(report.frames, 0);
        assert_eq!(c.replica_len(1), 0, "cold rejoin restarts empty");
        // Anti-entropy (Google+ runs it every 6 s) heals the divergence.
        assert!(c.read(Region::Tokyo, 120 * SEC).contains(&id));
    }

    #[test]
    fn crash_drops_in_flight_pushes_to_the_dead_replica() {
        let c = cluster(ServiceKind::FacebookFeed, None);
        let id = c.write(Region::Oregon, post(0, 1), MS);
        // Crash Tokyo (replica 1) while the push is still in flight,
        // then rejoin cold: the push died with the process, so until the
        // next anti-entropy round (2 s on FB Feed) the rejoined replica
        // diverges — exactly the window a live kill/rejoin opens on a
        // weak service.
        c.crash_replica(1);
        assert!(c.recover_replica(1).cold);
        assert!(
            !c.read(Region::Tokyo, 1_900 * MS).contains(&id),
            "the lost push must not redeliver before anti-entropy"
        );
        // The origin replica still serves it, and anti-entropy
        // eventually heals the divergence.
        assert!(c.read(Region::Oregon, 1_900 * MS).contains(&id));
        assert!(c.read(Region::Tokyo, 120 * SEC).contains(&id));
    }

    #[test]
    fn fast_path_tick_still_delivers_on_time() {
        // The atomic-horizon fast path must not postpone a due push: the
        // delivery instant observed on a fine probe grid is identical to
        // a cluster swept at every grid point (which `read` does anyway —
        // the point is that the sweep only *runs* when due).
        let c = cluster(ServiceKind::FacebookFeed, None);
        let id = c.write(Region::Oregon, post(0, 1), MS);
        let mut first_seen = None;
        for i in 0..2_000u64 {
            if c.read(Region::Tokyo, MS * i).contains(&id) {
                first_seen = Some(i);
                break;
            }
        }
        let first_seen = first_seen.expect("push delivered within 2 s");
        // Replay on a fresh cluster, jumping straight to the observed
        // instant: delivery must not depend on intermediate ticks.
        let c2 = cluster(ServiceKind::FacebookFeed, None);
        let id2 = c2.write(Region::Oregon, post(0, 1), MS);
        assert_eq!(id, id2);
        assert!(!c2.read(Region::Tokyo, MS * (first_seen - 1)).contains(&id2));
        assert!(c2.read(Region::Tokyo, MS * first_seen).contains(&id2));
    }
}
