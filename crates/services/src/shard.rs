//! Consistent-hash keyspace sharding for the live serving path.
//!
//! A [`ShardRing`] places every shard at a fixed set of *virtual points*
//! on a 64-bit hash ring; a key belongs to the shard owning the first
//! point at or after the key's own hash (wrapping). Properties the live
//! cluster and its tests rely on:
//!
//! * **Deterministic** — placement is a pure function of the shard count
//!   and the key. No RNG, no per-process state: every client, server and
//!   replay of a probe trace computes the identical `key → shard` map,
//!   across runs and regardless of any experiment seed.
//! * **Bounded movement** — growing the ring from `n` to `n + 1` shards
//!   only reassigns keys that fall to the new shard's points (about
//!   `1/(n+1)` of the keyspace); every other key keeps its shard, so a
//!   resharded deployment invalidates only the migrated slice. This is
//!   the classic consistent-hashing contract, and `tests` pins it.
//! * **Balanced** — [`VNODES`] points per shard smooth the ring enough
//!   that no shard owns a pathological share of a uniform keyspace.
//!
//! The hash is the workspace's standard FNV-1a 64 (the journal/frame
//! checksum), so the ring needs no new primitives.

/// Virtual points per shard. 64 keeps the worst/ideal load ratio within
/// ~2x for the shard counts the serving path uses (tens), at a lookup
/// cost of a binary search over `64 * shards` points.
pub const VNODES: usize = 64;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    // Raw FNV-1a diffuses short inputs poorly into the high bits, and
    // ring ownership is decided by the high bits; finish with a
    // SplitMix64-style avalanche so sequential keys scatter uniformly.
    hash ^= hash >> 30;
    hash = hash.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    hash ^= hash >> 27;
    hash = hash.wrapping_mul(0x94d0_49bb_1331_11eb);
    hash ^ (hash >> 31)
}

/// A consistent-hash ring mapping `u32` keyspace keys to shard indices.
#[derive(Debug, Clone)]
pub struct ShardRing {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, u32)>,
    shards: usize,
}

impl ShardRing {
    /// Builds the ring for `shards` shards (at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity(shards * VNODES);
        for shard in 0..shards as u32 {
            for vnode in 0..VNODES as u32 {
                let mut label = [0u8; 13];
                label[..5].copy_from_slice(b"shard");
                label[5..9].copy_from_slice(&shard.to_le_bytes());
                label[9..13].copy_from_slice(&vnode.to_le_bytes());
                points.push((fnv64(&label), shard));
            }
        }
        points.sort_unstable();
        // Hash collisions between distinct shards' points would make
        // ownership order-dependent; FNV-64 over 13-byte labels makes
        // them absurdly unlikely, and the sort above resolves any tie
        // deterministically by shard index anyway.
        ShardRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the first ring point at or after the
    /// key's hash, wrapping past the top of the ring.
    pub fn shard_for_key(&self, key: u32) -> usize {
        let h = fnv64(&key.to_le_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[if idx == self.points.len() { 0 } else { idx }];
        shard as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_across_constructions() {
        // Two independently built rings (different call sites, different
        // "runs") agree on every key; nothing about placement depends on
        // process state or experiment seeds.
        let a = ShardRing::new(16);
        let b = ShardRing::new(16);
        for key in (0..100_000u32).step_by(61) {
            assert_eq!(a.shard_for_key(key), b.shard_for_key(key), "key {key}");
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = ShardRing::new(1);
        for key in 0..1_000u32 {
            assert_eq!(ring.shard_for_key(key), 0);
        }
        // A zero request is clamped to one shard rather than panicking.
        assert_eq!(ShardRing::new(0).shard_for_key(7), 0);
    }

    #[test]
    fn growing_the_ring_moves_a_bounded_fraction_and_only_to_the_new_shard() {
        for n in [2usize, 4, 8, 16] {
            let before = ShardRing::new(n);
            let after = ShardRing::new(n + 1);
            let keys: Vec<u32> = (0..40_000u32).collect();
            let mut moved = 0usize;
            for &key in &keys {
                let from = before.shard_for_key(key);
                let to = after.shard_for_key(key);
                if from != to {
                    moved += 1;
                    // Consistent hashing: a key only ever moves *to* the
                    // shard that was added — old shards never trade keys
                    // among themselves.
                    assert_eq!(to, n, "key {key} moved {from}→{to} instead of to the new shard");
                }
            }
            let ideal = keys.len() / (n + 1);
            assert!(moved > 0, "growing {n}→{} must claim some keys", n + 1);
            assert!(
                moved <= ideal * 5 / 2,
                "growing {n}→{}: {moved} keys moved, ideal ~{ideal} (vnode imbalance too high)",
                n + 1
            );
        }
    }

    #[test]
    fn load_is_roughly_balanced_across_shards() {
        let shards = 16;
        let ring = ShardRing::new(shards);
        let mut counts = vec![0usize; shards];
        let total = 64_000u32;
        for key in 0..total {
            counts[ring.shard_for_key(key)] += 1;
        }
        let ideal = total as usize / shards;
        for (shard, &count) in counts.iter().enumerate() {
            assert!(count > 0, "shard {shard} owns no keys");
            assert!(
                count < ideal * 3,
                "shard {shard} owns {count} of {total} keys (ideal {ideal}) — ring too lumpy"
            );
        }
    }
}
