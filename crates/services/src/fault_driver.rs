//! Executes a [`FaultPlan`]'s service-level actions against deployed nodes.
//!
//! [`FaultPlan::service_actions`] speaks in abstract target indices; the
//! [`FaultDriver`] is the deployment-aware half that resolves those indices
//! against the real replica [`NodeId`]s, fires each transition at its
//! scheduled time as a [`ControlMsg`], and keeps an execution log for the
//! test's fault ledger. Network-level events don't pass through here — the
//! world applies those itself (see
//! [`conprobe_sim::World::add_fault_effect`]).
//!
//! The driver replaces the ad-hoc one-shot fault scripts that used to be
//! re-implemented per test: any composition of crash/restart cycles and
//! brownouts is now a plan, and the same plan drives both unit tests and
//! the harness.

use crate::api::{ControlMsg, NetMsg};
use conprobe_sim::{
    Context, FaultPlan, Node, NodeId, ServiceAction, ServiceActionKind, SimDuration, SimTime,
};

/// Extra copies of each control message, spaced [`RETRY_GAP`] apart.
///
/// The injector's control plane rides the same simulated network it
/// degrades, so a one-shot `BrownoutEnd` can be eaten by the very loss
/// burst it is composed with — leaving a replica throttled forever and
/// the test to its timeout. Control transitions are idempotent on every
/// service (duplicates are state no-ops), so blind retransmission is
/// safe; plans whose opposing transitions sit closer together than the
/// retry tail (`RETRANSMITS × RETRY_GAP`) are the composer's error.
const RETRANSMITS: u64 = 2;
/// Spacing between control-message retransmissions.
const RETRY_GAP: SimDuration = SimDuration::from_millis(150);

/// One executed (or skipped) service action, for the fault ledger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutedAction {
    /// When the transition fired.
    pub at: SimTime,
    /// The abstract target index from the plan.
    pub target: usize,
    /// The transition.
    pub action: ServiceActionKind,
}

/// A sim node that executes the service-level half of a [`FaultPlan`].
///
/// Construct it with the plan and the replica id list (plan target index
/// `i` maps to `targets[i]`), add it to the world, and read back
/// [`FaultDriver::log`] after the run. Actions naming an out-of-range
/// target are dropped at start-up and counted in
/// [`FaultDriver::skipped`] rather than panicking mid-run, so a generic
/// plan can be swept across topologies with fewer replicas.
#[derive(Debug)]
pub struct FaultDriver {
    targets: Vec<NodeId>,
    actions: Vec<ServiceAction>,
    log: Vec<ExecutedAction>,
    skipped: usize,
}

impl FaultDriver {
    /// Creates a driver for `plan` against the deployed `targets`.
    pub fn new(plan: &FaultPlan, targets: Vec<NodeId>) -> Self {
        let (actions, dropped): (Vec<_>, Vec<_>) =
            plan.service_actions().into_iter().partition(|a| a.target < targets.len());
        FaultDriver { targets, actions, log: Vec::new(), skipped: dropped.len() }
    }

    /// The actions executed so far, in firing order.
    pub fn log(&self) -> &[ExecutedAction] {
        &self.log
    }

    /// Actions dropped because their target index had no deployed replica.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Total actions still waiting to fire.
    pub fn pending(&self) -> usize {
        self.actions.len() - self.log.len()
    }
}

impl<A: Send + 'static> Node<NetMsg<A>> for FaultDriver {
    fn on_start(&mut self, ctx: &mut Context<'_, NetMsg<A>>) {
        // on_start runs at t = 0, so each action's absolute time is its
        // timer delay; the token indexes into the action list (attempt 0).
        for (i, action) in self.actions.iter().enumerate() {
            ctx.set_timer(action.at.saturating_since(SimTime::ZERO), i as u64);
        }
    }

    fn on_message(&mut self, _: &mut Context<'_, NetMsg<A>>, _: NodeId, _: NetMsg<A>) {}

    fn on_timer(&mut self, ctx: &mut Context<'_, NetMsg<A>>, token: u64) {
        // token = attempt · |actions| + index: every firing re-sends its
        // action; only attempt 0 enters the ledger.
        let n = self.actions.len() as u64;
        let (attempt, index) = (token / n, (token % n) as usize);
        let action = self.actions[index];
        let ctl = match action.action {
            ServiceActionKind::Crash => ControlMsg::Crash,
            ServiceActionKind::Recover => ControlMsg::Recover,
            ServiceActionKind::BrownoutStart(mode) => ControlMsg::BrownoutStart(mode),
            ServiceActionKind::BrownoutEnd => ControlMsg::BrownoutEnd,
        };
        ctx.send(self.targets[action.target], NetMsg::Control(ctl));
        if attempt == 0 {
            self.log.push(ExecutedAction {
                at: ctx.true_now(),
                target: action.target,
                action: action.action,
            });
        }
        if attempt < RETRANSMITS {
            ctx.set_timer(RETRY_GAP, token + n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica_node::{ReplicaNode, ReplicaParams};
    use conprobe_sim::net::Region;
    use conprobe_sim::{BrownoutMode, FaultEvent, LocalClock, SimDuration, World, WorldConfig};

    type Msg = NetMsg<()>;

    fn world_with_replica() -> (World<Msg>, NodeId) {
        let mut w = World::new(WorldConfig::default(), 21);
        let r = w.add_node_with_clock(
            Region::Virginia,
            LocalClock::perfect(),
            Box::new(ReplicaNode::new(ReplicaParams::default())),
        );
        (w, r)
    }

    #[test]
    fn crash_cycle_toggles_replica_state_and_is_logged() {
        let (mut w, r) = world_with_replica();
        let plan = FaultPlan::new(1).with(FaultEvent::CrashCycle {
            target: 0,
            at: SimTime::from_secs(1),
            down_for: SimDuration::from_secs(2),
            up_for: SimDuration::from_secs(1),
            cycles: 2,
        });
        let driver = w.add_node(Region::Virginia, Box::new(FaultDriver::new(&plan, vec![r])));
        // Timeline: crash 1 s, recover 3 s, crash 4 s, recover 6 s.
        w.run_until(SimTime::from_secs(2));
        assert!(w.node_as::<ReplicaNode>(r).unwrap().is_crashed());
        w.run_until(SimTime::from_millis(3500));
        assert!(!w.node_as::<ReplicaNode>(r).unwrap().is_crashed());
        w.run_until(SimTime::from_secs(5));
        assert!(w.node_as::<ReplicaNode>(r).unwrap().is_crashed());
        w.run_until(SimTime::from_secs(7));
        assert!(!w.node_as::<ReplicaNode>(r).unwrap().is_crashed());
        let d = w.node_as::<FaultDriver>(driver).unwrap();
        assert_eq!(d.log().len(), 4);
        assert_eq!(d.log()[0].action, ServiceActionKind::Crash);
        assert_eq!(d.log()[0].at, SimTime::from_secs(1));
        assert_eq!(d.log()[3].action, ServiceActionKind::Recover);
        assert_eq!(d.log()[3].at, SimTime::from_secs(6));
        assert_eq!(d.skipped(), 0);
    }

    #[test]
    fn brownout_window_sets_and_clears_mode() {
        let (mut w, r) = world_with_replica();
        let plan = FaultPlan::new(1).with(FaultEvent::Brownout {
            target: 0,
            at: SimTime::from_secs(1),
            duration: SimDuration::from_secs(2),
            mode: BrownoutMode::ThrottleStorm,
        });
        let _driver = w.add_node(Region::Virginia, Box::new(FaultDriver::new(&plan, vec![r])));
        w.run_until(SimTime::from_secs(2));
        assert_eq!(
            w.node_as::<ReplicaNode>(r).unwrap().brownout(),
            Some(BrownoutMode::ThrottleStorm)
        );
        w.run_until(SimTime::from_secs(4));
        assert_eq!(w.node_as::<ReplicaNode>(r).unwrap().brownout(), None);
    }

    /// Sends one Read at a fixed time and records the response arrival.
    struct ProbeClient {
        target: NodeId,
        send_at: SimDuration,
        response: Option<(SimTime, crate::api::OpResult)>,
    }
    impl Node<Msg> for ProbeClient {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.set_timer(self.send_at, 0);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _: NodeId, msg: Msg) {
            if let NetMsg::Response { result, .. } = msg {
                self.response = Some((ctx.true_now(), result));
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _: u64) {
            ctx.send(self.target, NetMsg::Request { req_id: 1, op: crate::api::ClientOp::Read });
        }
    }

    fn probe_through_brownout(mode: BrownoutMode) -> (SimTime, crate::api::OpResult) {
        let (mut w, r) = world_with_replica();
        let plan = FaultPlan::new(1).with(FaultEvent::Brownout {
            target: 0,
            at: SimTime::from_secs(1),
            duration: SimDuration::from_secs(2),
            mode,
        });
        let _driver = w.add_node(Region::Virginia, Box::new(FaultDriver::new(&plan, vec![r])));
        let client = w.add_node(
            Region::Virginia,
            Box::new(ProbeClient {
                target: r,
                send_at: SimDuration::from_millis(1500),
                response: None,
            }),
        );
        w.run_until_idle();
        w.node_as::<ProbeClient>(client).unwrap().response.clone().expect("answered")
    }

    #[test]
    fn throttle_storm_brownout_rejects_client_requests() {
        let (at, result) = probe_through_brownout(BrownoutMode::ThrottleStorm);
        assert_eq!(result, crate::api::OpResult::Throttled);
        assert!(at < SimTime::from_secs(2), "rejected immediately");
    }

    #[test]
    fn delay_brownout_holds_requests_then_serves_them() {
        let (at, result) = probe_through_brownout(BrownoutMode::Delay(SimDuration::from_secs(3)));
        assert!(matches!(result, crate::api::OpResult::ReadOk(_)), "served, not rejected");
        // Sent at 1.5 s, held 3 s: the answer cannot arrive before 4.5 s
        // (well past the brownout window itself).
        assert!(at >= SimTime::from_millis(4500), "answered at {at}");
    }

    #[test]
    fn out_of_range_targets_are_skipped_not_fatal() {
        let (mut w, r) = world_with_replica();
        let plan = FaultPlan::new(1)
            .with(FaultEvent::CrashCycle {
                target: 7, // no such replica
                at: SimTime::from_secs(1),
                down_for: SimDuration::from_secs(1),
                up_for: SimDuration::ZERO,
                cycles: 1,
            })
            .with(FaultEvent::Brownout {
                target: 0,
                at: SimTime::from_secs(1),
                duration: SimDuration::from_secs(1),
                mode: BrownoutMode::Delay(SimDuration::from_millis(100)),
            });
        let driver = w.add_node(Region::Virginia, Box::new(FaultDriver::new(&plan, vec![r])));
        w.run_until_idle();
        let d = w.node_as::<FaultDriver>(driver).unwrap();
        assert_eq!(d.skipped(), 2, "crash + recover of target 7 dropped");
        assert_eq!(d.log().len(), 2, "brownout start + end fired");
        assert_eq!(d.pending(), 0);
        assert!(!w.node_as::<ReplicaNode>(r).unwrap().is_crashed());
    }
}
