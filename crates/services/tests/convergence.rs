//! Randomized convergence properties of the replication substrate: for
//! arbitrary (sane) replica parameters, topology sizes and write loads, all
//! replicas converge to identical state once the system quiesces — the
//! eventual-consistency contract every service model relies on.

use conprobe_services::replica_node::{DelayDist, ReadPath, ReplicaNode, ReplicaParams};
use conprobe_services::{ClientOp, NetMsg};
use conprobe_sim::net::Region;
use conprobe_sim::{
    Context, LocalClock, LocalTime, Node, NodeId, SimDuration, SimRng, SimTime, World, WorldConfig,
};
use conprobe_store::{AuthorId, OrderingPolicy, Post, PostId};

type Msg = NetMsg<()>;

/// Fires `count` writes at `target`, spaced `gap_ms` apart.
struct Blaster {
    target: NodeId,
    author: u32,
    count: u32,
    gap_ms: u64,
    sent: u32,
}

impl Node<Msg> for Blaster {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _: u64) {
        if self.sent >= self.count {
            return;
        }
        self.sent += 1;
        let post =
            Post::new(PostId::new(AuthorId(self.author), self.sent), "x", LocalTime::from_nanos(0));
        ctx.send(
            self.target,
            NetMsg::Request { req_id: self.sent as u64, op: ClientOp::Write(post) },
        );
        ctx.set_timer(SimDuration::from_millis(self.gap_ms), 0);
    }
}

#[derive(Debug, Clone)]
struct Scenario {
    replicas: usize,
    writers: Vec<(usize, u32, u64)>, // (home replica, writes, gap ms)
    repl_base_ms: u64,
    apply_slow_prob: f64,
    anti_entropy_ms: u64,
    canonicalize: bool,
    seed: u64,
}

fn gen_scenario(rng: &mut SimRng) -> Scenario {
    let replicas = rng.gen_range(2usize..5);
    let writers = (0..rng.gen_range(1usize..4))
        .map(|_| {
            (rng.gen_range(0usize..4) % replicas, rng.gen_range(1u32..5), rng.gen_range(10u64..400))
        })
        .collect();
    Scenario {
        replicas,
        writers,
        repl_base_ms: rng.gen_range(0u64..800),
        apply_slow_prob: rng.gen_range(0.0f64..0.5),
        anti_entropy_ms: rng.gen_range(300u64..3_000),
        canonicalize: rng.gen_bool(0.5),
        seed: rng.gen_u64(),
    }
}

fn run_scenario(s: &Scenario) -> Vec<(std::sync::Arc<[PostId]>, usize)> {
    let params = ReplicaParams {
        ordering: if s.canonicalize {
            OrderingPolicy::Arrival
        } else {
            OrderingPolicy::exact_timestamp()
        },
        read_path: ReadPath::Snapshot,
        apply_delay: DelayDist::Bimodal {
            fast: SimDuration::from_millis(5),
            slow_prob: s.apply_slow_prob,
            slow_base: SimDuration::from_millis(200),
            slow_mean: SimDuration::from_millis(300),
        },
        repl_delay: DelayDist::Exp {
            base: SimDuration::from_millis(s.repl_base_ms),
            mean: SimDuration::from_millis(s.repl_base_ms / 2 + 10),
        },
        anti_entropy: Some(SimDuration::from_millis(s.anti_entropy_ms)),
        canonicalize_on_anti_entropy: s.canonicalize,
        ..ReplicaParams::default()
    };
    let mut world: World<Msg> = World::new(WorldConfig::default(), s.seed);
    let regions =
        [Region::Oregon, Region::Tokyo, Region::Ireland, Region::Virginia, Region::Datacenter(0)];
    let ids: Vec<NodeId> = (0..s.replicas)
        .map(|i| {
            world.add_node_with_clock(
                regions[i % regions.len()],
                LocalClock::perfect(),
                Box::new(ReplicaNode::new(params.clone())),
            )
        })
        .collect();
    for (i, id) in ids.iter().enumerate() {
        let peers = ids.iter().enumerate().filter(|(j, _)| *j != i).map(|(_, p)| *p).collect();
        world.node_as_mut::<ReplicaNode>(*id).unwrap().set_peers(peers);
    }
    for (w, (home, count, gap)) in s.writers.iter().enumerate() {
        world.add_node(
            Region::Virginia,
            Box::new(Blaster {
                target: ids[*home],
                author: w as u32,
                count: *count,
                gap_ms: *gap,
                sent: 0,
            }),
        );
    }
    // Long enough for every write, the slowest propagation tail, and
    // several anti-entropy rounds.
    world.run_until(SimTime::from_secs(60));
    ids.iter()
        .map(|id| {
            let node = world.node_as::<ReplicaNode>(*id).unwrap();
            (node.snapshot(), node.applied())
        })
        .collect()
}

/// All replicas hold the same set of posts after quiescence, and with
/// canonical re-sequencing (or timestamp ordering) the same *sequence*.
#[test]
fn replicas_converge() {
    let mut rng = SimRng::new(0xC04E_0001);
    for _ in 0..24 {
        let s = gen_scenario(&mut rng);
        let total: u32 = s.writers.iter().map(|(_, n, _)| *n).sum();
        let states = run_scenario(&s);
        for (snapshot, applied) in &states {
            assert_eq!(
                *applied, total as usize,
                "every write reaches every replica (scenario {s:?})"
            );
            assert_eq!(snapshot.len(), total as usize, "scenario {s:?}");
        }
        let first = &states[0].0;
        for (snapshot, _) in &states[1..] {
            assert_eq!(
                snapshot, first,
                "replicas must agree on the final sequence (scenario {s:?})"
            );
        }
    }
}
