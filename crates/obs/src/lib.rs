//! # conprobe-obs — deterministic observability for long-running campaigns
//!
//! The paper's authors ran each service for ~30 days and could only
//! characterize what their harness logged. This crate is the reproduction's
//! telemetry substrate: a metrics registry of lock-free-ish atomic
//! counters/gauges/fixed-bucket histograms, a bounded ring-buffer event log
//! keyed by **simulation time**, and wall-clock [`Span`] guards for
//! harness/campaign phases.
//!
//! ## Determinism contract
//!
//! Observability must never change what a simulation does:
//!
//! * recording a metric or an event draws **no randomness** and schedules
//!   **no events** — it only mutates atomics or appends to a bounded log;
//! * nothing in the simulation ever *reads* a metric back to make a
//!   decision;
//! * every hot-path hook is gated on an `Option`, so a world without an
//!   installed sink pays one branch per event and nothing else.
//!
//! The golden-seed suite (`tests/determinism_golden.rs` at the workspace
//! root) holds this contract: fingerprints must be byte-identical with
//! observability on and off.
//!
//! ## Time bases
//!
//! Metrics recorded *inside* the simulation (delivery counters, propagation
//! lags, coordinator phases) are keyed by sim-time nanoseconds. [`Span`]
//! guards use the host's wall clock and exist for the code *around* the
//! simulation — campaign stages, per-instance timings — where wall time is
//! the quantity of interest. Wall-clock readings never flow back into
//! simulation logic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use conprobe_json::JsonValue;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonically increasing counter (atomic, shareable across threads).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (for tests/defaults).
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64` (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds (inclusive) of the first `bounds.len()` buckets; one
    /// overflow bucket follows.
    bounds: Box<[u64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram of `u64` samples (typically nanoseconds).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.into(),
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let idx = self.0.bounds.partition_point(|b| *b < v);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// `(upper_bound, count)` per bucket; the final entry is the overflow
    /// bucket, reported with `u64::MAX` as its bound.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .map(|(i, c)| {
                (self.0.bounds.get(i).copied().unwrap_or(u64::MAX), c.load(Ordering::Relaxed))
            })
            .collect()
    }
}

/// Default histogram bounds for latency-like quantities in nanoseconds:
/// 1 ms … 30 s in a 1-2-5 progression.
pub fn latency_bounds_nanos() -> Vec<u64> {
    const MS: u64 = 1_000_000;
    vec![
        MS,
        2 * MS,
        5 * MS,
        10 * MS,
        20 * MS,
        50 * MS,
        100 * MS,
        200 * MS,
        500 * MS,
        1_000 * MS,
        2_000 * MS,
        5_000 * MS,
        10_000 * MS,
        30_000 * MS,
    ]
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A registry of named metrics. Cloning shares the underlying store;
/// registration takes a lock, but recording through the returned handles is
/// wait-free atomic arithmetic — callers cache handles, not names.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map.entry(name.to_string()).or_insert_with(|| Metric::Counter(Counter::detached())) {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric '{name}' already registered as {}", kind_name(other)),
        }
    }

    /// Gets or creates the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Gauge::detached())) {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric '{name}' already registered as {}", kind_name(other)),
        }
    }

    /// Gets or creates the histogram `name` with the given bucket bounds
    /// (bounds are fixed at first registration).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric '{name}' already registered as {}", kind_name(other)),
        }
    }

    /// Starts a wall-clock span named `name`: on drop it adds the elapsed
    /// nanoseconds to `<name>.nanos` and one to `<name>.count`.
    pub fn span(&self, name: &str) -> Span {
        Span {
            nanos: self.counter(&format!("{name}.nanos")),
            count: self.counter(&format!("{name}.count")),
            started: Instant::now(),
        }
    }

    /// True when no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("metrics registry poisoned").is_empty()
    }

    /// Serializes every metric, sorted by name, as
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> JsonValue {
        let map = self.inner.lock().expect("metrics registry poisoned");
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => counters.push((name.clone(), JsonValue::UInt(c.get()))),
                Metric::Gauge(g) => gauges.push((name.clone(), JsonValue::Float(g.get()))),
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    // The overflow bucket has no finite upper bound. Its
                    // `u64::MAX` sentinel must not leak into the dump:
                    // consumers reading JSON numbers as f64 would render it
                    // as 18446744073709552000 (u64::MAX is not exactly
                    // representable). `null` says "open-ended" explicitly.
                    let bounds: Vec<JsonValue> = snap
                        .iter()
                        .map(
                            |(b, _)| {
                                if *b == u64::MAX {
                                    JsonValue::Null
                                } else {
                                    JsonValue::UInt(*b)
                                }
                            },
                        )
                        .collect();
                    let counts: Vec<JsonValue> =
                        snap.iter().map(|(_, c)| JsonValue::UInt(*c)).collect();
                    histograms.push((
                        name.clone(),
                        JsonValue::Object(vec![
                            ("count".into(), JsonValue::UInt(h.count())),
                            ("sum".into(), JsonValue::UInt(h.sum())),
                            ("bucket_upper_bounds".into(), JsonValue::Array(bounds)),
                            ("bucket_counts".into(), JsonValue::Array(counts)),
                        ]),
                    ));
                }
            }
        }
        JsonValue::Object(vec![
            ("counters".into(), JsonValue::Object(counters)),
            ("gauges".into(), JsonValue::Object(gauges)),
            ("histograms".into(), JsonValue::Object(histograms)),
        ])
    }
}

fn kind_name(m: &Metric) -> &'static str {
    match m {
        Metric::Counter(_) => "a counter",
        Metric::Gauge(_) => "a gauge",
        Metric::Histogram(_) => "a histogram",
    }
}

/// A wall-clock duration guard (see [`MetricsRegistry::span`]).
///
/// Wall time only — spans never feed back into simulation logic.
#[derive(Debug)]
pub struct Span {
    nanos: Counter,
    count: Counter,
    started: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        self.nanos.add(self.started.elapsed().as_nanos() as u64);
        self.count.inc();
    }
}

/// Event severity, lowest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Per-event chatter (message deliveries, timer fires).
    Debug,
    /// Phase transitions, notable state changes.
    Info,
    /// Degraded operation: drops, retries, quarantines, brownouts.
    Warn,
    /// A failure of the prober itself: a panicking campaign worker,
    /// an unrecoverable journal write error.
    Error,
}

impl Severity {
    /// Parses "debug" / "info" / "warn" / "error" (case-insensitive).
    pub fn parse(s: &str) -> Option<Severity> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(Severity::Debug),
            "info" => Some(Severity::Info),
            "warn" | "warning" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Severity::Debug => "DEBUG",
            Severity::Info => "INFO",
            Severity::Warn => "WARN",
            Severity::Error => "ERROR",
        })
    }
}

/// One structured event, keyed by true simulation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// True sim-time of the event, nanoseconds since the world epoch.
    pub at_nanos: u64,
    /// Severity.
    pub severity: Severity,
    /// Subsystem that emitted it ("sim", "services", "harness", …).
    pub target: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl ObsEvent {
    /// Renders as `[   1.234567s] WARN  sim       message`.
    pub fn render(&self) -> String {
        format!(
            "[{:>11.6}s] {:<5} {:<9} {}",
            self.at_nanos as f64 / 1e9,
            self.severity,
            self.target,
            self.message
        )
    }
}

#[derive(Debug)]
struct EventLogCore {
    capacity: usize,
    min_severity: Severity,
    target_prefix: Option<String>,
    events: Mutex<VecDeque<ObsEvent>>,
    evicted: AtomicU64,
}

/// A bounded ring buffer of [`ObsEvent`]s with record-time severity/target
/// filtering. The default ([`EventLog::disabled`]) records nothing —
/// producers must check [`EventLog::enabled`] before formatting messages so
/// a disabled log costs one branch, not one `format!`.
#[derive(Debug, Clone)]
pub struct EventLog(Arc<EventLogCore>);

impl EventLog {
    /// A log that records nothing (capacity zero).
    pub fn disabled() -> Self {
        EventLog::new(0)
    }

    /// A log keeping the most recent `capacity` events at `Debug` and
    /// above, all targets.
    pub fn new(capacity: usize) -> Self {
        EventLog(Arc::new(EventLogCore {
            capacity,
            min_severity: Severity::Debug,
            target_prefix: None,
            events: Mutex::new(VecDeque::new()),
            evicted: AtomicU64::new(0),
        }))
    }

    /// Builder: drop events below `min` at record time.
    pub fn with_min_severity(self, min: Severity) -> Self {
        EventLog(Arc::new(EventLogCore {
            capacity: self.0.capacity,
            min_severity: min,
            target_prefix: self.0.target_prefix.clone(),
            events: Mutex::new(VecDeque::new()),
            evicted: AtomicU64::new(0),
        }))
    }

    /// Builder: keep only events whose target starts with `prefix`.
    pub fn with_target_prefix(self, prefix: impl Into<String>) -> Self {
        EventLog(Arc::new(EventLogCore {
            capacity: self.0.capacity,
            min_severity: self.0.min_severity,
            target_prefix: Some(prefix.into()),
            events: Mutex::new(VecDeque::new()),
            evicted: AtomicU64::new(0),
        }))
    }

    /// Whether an event with this severity/target would be kept. Check this
    /// before building the message string.
    pub fn enabled(&self, severity: Severity, target: &str) -> bool {
        self.0.capacity > 0
            && severity >= self.0.min_severity
            && self.0.target_prefix.as_ref().is_none_or(|p| target.starts_with(p.as_str()))
    }

    /// Records an event (no-op when filtered out). The oldest event is
    /// evicted once the ring is full.
    pub fn record(
        &self,
        at_nanos: u64,
        severity: Severity,
        target: &'static str,
        message: impl Into<String>,
    ) {
        if !self.enabled(severity, target) {
            return;
        }
        let mut events = self.0.events.lock().expect("event log poisoned");
        if events.len() >= self.0.capacity {
            events.pop_front();
            self.0.evicted.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(ObsEvent { at_nanos, severity, target, message: message.into() });
    }

    /// Drains and returns all retained events, oldest first.
    pub fn drain(&self) -> Vec<ObsEvent> {
        self.0.events.lock().expect("event log poisoned").drain(..).collect()
    }

    /// Number of events evicted by the ring bound (signals an undersized
    /// `--cap`).
    pub fn evicted(&self) -> u64 {
        self.0.evicted.load(Ordering::Relaxed)
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.0.events.lock().expect("event log poisoned").len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::disabled()
    }
}

/// The pair a world or harness layer records into: a metrics registry plus
/// an event log. Cloning shares both.
#[derive(Debug, Clone, Default)]
pub struct ObsSink {
    /// Metrics store.
    pub metrics: MetricsRegistry,
    /// Structured event log (disabled by default).
    pub log: EventLog,
}

impl ObsSink {
    /// A sink collecting metrics only (event log disabled).
    pub fn new() -> Self {
        ObsSink::default()
    }

    /// A sink with the given event log attached.
    pub fn with_log(log: EventLog) -> Self {
        ObsSink { metrics: MetricsRegistry::new(), log }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.count");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("a.count").get(), 5, "same name shares state");
        let g = reg.gauge("a.rate");
        g.set(2.5);
        assert_eq!(reg.gauge("a.rate").get(), 2.5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn histogram_buckets_samples() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[10, 100]);
        for v in [5, 10, 11, 100, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5126);
        // Bounds are inclusive: 10 lands in the first bucket.
        assert_eq!(h.snapshot(), vec![(10, 2), (100, 2), (u64::MAX, 1)]);
    }

    #[test]
    fn span_accumulates_wall_time() {
        let reg = MetricsRegistry::new();
        {
            let _s = reg.span("phase.x");
        }
        {
            let _s = reg.span("phase.x");
        }
        assert_eq!(reg.counter("phase.x.count").get(), 2);
        // Elapsed is tiny but measured; the counter existing is the point.
        let _ = reg.counter("phase.x.nanos").get();
    }

    #[test]
    fn event_log_ring_and_filters() {
        let log = EventLog::new(2).with_min_severity(Severity::Info);
        assert!(!log.enabled(Severity::Debug, "sim"));
        log.record(1, Severity::Debug, "sim", "dropped by filter");
        log.record(2, Severity::Info, "sim", "one");
        log.record(3, Severity::Warn, "harness", "two");
        log.record(4, Severity::Info, "sim", "three");
        assert_eq!(log.evicted(), 1);
        let events = log.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].message, "two");
        assert_eq!(events[1].message, "three");
        assert!(log.is_empty());
    }

    #[test]
    fn target_prefix_filters() {
        let log = EventLog::new(10).with_target_prefix("services");
        assert!(log.enabled(Severity::Debug, "services.replica"));
        assert!(!log.enabled(Severity::Warn, "sim"));
        log.record(0, Severity::Warn, "sim", "filtered");
        log.record(0, Severity::Debug, "services", "kept");
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn disabled_log_costs_nothing() {
        let log = EventLog::disabled();
        assert!(!log.enabled(Severity::Warn, "sim"));
        log.record(0, Severity::Warn, "sim", "ignored");
        assert!(log.is_empty());
        assert_eq!(log.evicted(), 0);
    }

    #[test]
    fn registry_json_shape() {
        let sink = ObsSink::new();
        sink.metrics.counter("sim.delivered").add(7);
        sink.metrics.gauge("campaign.tests_per_sec").set(12.0);
        sink.metrics.histogram("services.lag", &[100]).record(50);
        let doc = sink.metrics.to_json();
        assert_eq!(
            doc.get("counters").and_then(|c| c.get("sim.delivered")).and_then(|v| v.as_u64()),
            Some(7)
        );
        assert_eq!(
            doc.get("gauges")
                .and_then(|g| g.get("campaign.tests_per_sec"))
                .and_then(|v| v.as_f64()),
            Some(12.0)
        );
        let hist = doc.get("histograms").and_then(|h| h.get("services.lag")).expect("histogram");
        assert_eq!(hist.get("count").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn histogram_json_overflow_bound_is_null_not_u64_max() {
        let sink = ObsSink::new();
        sink.metrics.histogram("services.lag", &[10, 100]).record(5000);
        let doc = sink.metrics.to_json();
        let hist = doc.get("histograms").and_then(|h| h.get("services.lag")).expect("histogram");
        let bounds = match hist.get("bucket_upper_bounds") {
            Some(JsonValue::Array(b)) => b,
            other => panic!("bucket_upper_bounds missing: {other:?}"),
        };
        assert_eq!(bounds[0], JsonValue::UInt(10));
        assert_eq!(bounds[1], JsonValue::UInt(100));
        assert_eq!(bounds[2], JsonValue::Null, "open-ended bucket must serialize as null");
        // Counts stay aligned with bounds: the overflow sample is in the
        // final (null-bounded) bucket.
        let counts = match hist.get("bucket_counts") {
            Some(JsonValue::Array(c)) => c,
            other => panic!("bucket_counts missing: {other:?}"),
        };
        assert_eq!(counts[2], JsonValue::UInt(1));
        // The rendered dump never contains the u64::MAX sentinel (which
        // f64-based JSON readers would mangle to 18446744073709552000).
        let out = doc.to_compact();
        assert!(!out.contains("18446744073709551615"), "sentinel leaked: {out}");
    }

    #[test]
    fn event_render_format() {
        let e = ObsEvent {
            at_nanos: 1_234_567_000,
            severity: Severity::Warn,
            target: "sim",
            message: "drop".into(),
        };
        assert_eq!(e.render(), "[   1.234567s] WARN  sim       drop");
    }

    #[test]
    fn severity_parse_and_order() {
        assert_eq!(Severity::parse("WARN"), Some(Severity::Warn));
        assert_eq!(Severity::parse("nope"), None);
        assert!(Severity::Debug < Severity::Info && Severity::Info < Severity::Warn);
    }
}
