//! Cristian-style clock-delta estimation (§IV, *Time synchronization*).
//!
//! *"A coordinator process conducts a series of queries to the different
//! agents to request a reading of their current local time, and also
//! measures the RTT to fulfill that query. The clock deltas are then
//! calculated by assuming the time spent to send the request and receive the
//! reply are the same, and taking the average over all the estimates of this
//! delta. The uncertainty of this computation is half of the RTT values."*

use conprobe_sim::LocalTime;

/// One completed probe: the coordinator's send/receive local times and the
/// agent's reported local reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSample {
    /// Coordinator local time when the probe was sent.
    pub sent: LocalTime,
    /// Coordinator local time when the reply arrived.
    pub received: LocalTime,
    /// The agent's local clock reading (taken when the probe reached it).
    pub agent_reading: LocalTime,
}

impl ProbeSample {
    /// The probe's round-trip time in nanoseconds.
    pub fn rtt_nanos(&self) -> i64 {
        self.received.delta_nanos(self.sent)
    }

    /// The single-probe delta estimate: agent reading minus the
    /// coordinator's midpoint time (assumes symmetric one-way delays).
    pub fn delta_nanos(&self) -> i64 {
        let midpoint = self.sent.as_nanos() + self.rtt_nanos() / 2;
        self.agent_reading.as_nanos() - midpoint
    }
}

/// The estimated clock delta of one agent relative to the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaEstimate {
    /// Estimated `agent_local − coordinator_local`, in nanoseconds.
    pub delta_nanos: i64,
    /// Half the average RTT — the paper's uncertainty bound.
    pub uncertainty_nanos: i64,
    /// Number of probes averaged.
    pub samples: u32,
}

impl DeltaEstimate {
    /// Maps an agent-local reading onto the coordinator's timeline.
    pub fn to_coordinator(&self, agent_local: LocalTime) -> LocalTime {
        agent_local.offset_by(-self.delta_nanos)
    }
}

/// Averages probe samples into a [`DeltaEstimate`].
///
/// # Panics
///
/// Panics if `samples` is empty — an estimate from zero probes is
/// meaningless, and the coordinator never requests one.
pub fn estimate(samples: &[ProbeSample]) -> DeltaEstimate {
    assert!(!samples.is_empty(), "cannot estimate a clock delta from zero probes");
    let n = samples.len() as i64;
    let delta = samples.iter().map(ProbeSample::delta_nanos).sum::<i64>() / n;
    let avg_rtt = samples.iter().map(ProbeSample::rtt_nanos).sum::<i64>() / n;
    DeltaEstimate {
        delta_nanos: delta,
        uncertainty_nanos: avg_rtt / 2,
        samples: samples.len() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lt(ms: i64) -> LocalTime {
        LocalTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn symmetric_probe_recovers_exact_delta() {
        // Coordinator sends at 0, receives at 100 ms; the agent (clock
        // +5 s) read its clock at true midpoint 50 ms → reading 5050 ms.
        let p = ProbeSample { sent: lt(0), received: lt(100), agent_reading: lt(5050) };
        assert_eq!(p.rtt_nanos(), 100_000_000);
        assert_eq!(p.delta_nanos(), 5_000_000_000);
        let e = estimate(&[p]);
        assert_eq!(e.delta_nanos, 5_000_000_000);
        assert_eq!(e.uncertainty_nanos, 50_000_000);
        assert_eq!(e.samples, 1);
    }

    #[test]
    fn asymmetric_delay_error_is_bounded_by_half_rtt() {
        // True delta 0, but the request took 80 ms and the reply 20 ms:
        // reading taken at true 80 ms, midpoint assumed 50 ms → error 30 ms
        // < half RTT (50 ms).
        let p = ProbeSample { sent: lt(0), received: lt(100), agent_reading: lt(80) };
        let err = p.delta_nanos().abs();
        assert_eq!(err, 30_000_000);
        assert!(err <= p.rtt_nanos() / 2);
    }

    #[test]
    fn averaging_reduces_noise() {
        // Two probes with opposite asymmetries average to the truth.
        let p1 = ProbeSample { sent: lt(0), received: lt(100), agent_reading: lt(80) };
        let p2 = ProbeSample { sent: lt(200), received: lt(300), agent_reading: lt(220) };
        let e = estimate(&[p1, p2]);
        assert_eq!(e.delta_nanos, 0);
        assert_eq!(e.samples, 2);
    }

    #[test]
    fn negative_delta_round_trip() {
        // Agent clock 2 s *behind*.
        let p = ProbeSample { sent: lt(0), received: lt(100), agent_reading: lt(-1950) };
        let e = estimate(&[p]);
        assert_eq!(e.delta_nanos, -2_000_000_000);
        // Mapping an agent reading back onto the coordinator timeline.
        assert_eq!(e.to_coordinator(lt(-1950)), lt(50));
    }

    #[test]
    #[should_panic(expected = "zero probes")]
    fn estimate_requires_samples() {
        let _ = estimate(&[]);
    }
}
