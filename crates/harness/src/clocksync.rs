//! Cristian-style clock-delta estimation (§IV, *Time synchronization*).
//!
//! *"A coordinator process conducts a series of queries to the different
//! agents to request a reading of their current local time, and also
//! measures the RTT to fulfill that query. The clock deltas are then
//! calculated by assuming the time spent to send the request and receive the
//! reply are the same, and taking the average over all the estimates of this
//! delta. The uncertainty of this computation is half of the RTT values."*

use conprobe_sim::LocalTime;

/// One completed probe: the coordinator's send/receive local times and the
/// agent's reported local reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSample {
    /// Coordinator local time when the probe was sent.
    pub sent: LocalTime,
    /// Coordinator local time when the reply arrived.
    pub received: LocalTime,
    /// The agent's local clock reading (taken when the probe reached it).
    pub agent_reading: LocalTime,
}

impl ProbeSample {
    /// The probe's round-trip time in nanoseconds.
    pub fn rtt_nanos(&self) -> i64 {
        self.received.delta_nanos(self.sent)
    }

    /// The single-probe delta estimate: agent reading minus the
    /// coordinator's midpoint time (assumes symmetric one-way delays).
    ///
    /// **Error bound.** If the true one-way delays are `d_req` (probe out)
    /// and `d_resp` (reply back), the estimate's error is exactly
    /// `(d_req − d_resp) / 2` — half the delay *asymmetry* — and therefore
    /// at most `RTT / 2` in magnitude, which is why the paper reports half
    /// the RTT as the uncertainty. A perfectly symmetric path gives zero
    /// error regardless of how slow it is. The property test
    /// `asymmetry_error_is_exactly_half_the_delay_imbalance` exercises
    /// this bound across a seeded sweep of delay splits and true deltas.
    pub fn delta_nanos(&self) -> i64 {
        let midpoint = self.sent.as_nanos() + self.rtt_nanos() / 2;
        self.agent_reading.as_nanos() - midpoint
    }
}

/// The estimated clock delta of one agent relative to the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaEstimate {
    /// Estimated `agent_local − coordinator_local`, in nanoseconds.
    pub delta_nanos: i64,
    /// Half the average RTT — the paper's uncertainty bound.
    pub uncertainty_nanos: i64,
    /// Number of probes averaged.
    pub samples: u32,
}

impl DeltaEstimate {
    /// Maps an agent-local reading onto the coordinator's timeline.
    pub fn to_coordinator(&self, agent_local: LocalTime) -> LocalTime {
        agent_local.offset_by(-self.delta_nanos)
    }
}

/// Averages probe samples into a [`DeltaEstimate`].
///
/// # Panics
///
/// Panics if `samples` is empty — an estimate from zero probes is
/// meaningless, and the coordinator never requests one.
pub fn estimate(samples: &[ProbeSample]) -> DeltaEstimate {
    assert!(!samples.is_empty(), "cannot estimate a clock delta from zero probes");
    let n = samples.len() as i64;
    let delta = samples.iter().map(ProbeSample::delta_nanos).sum::<i64>() / n;
    let avg_rtt = samples.iter().map(ProbeSample::rtt_nanos).sum::<i64>() / n;
    DeltaEstimate {
        delta_nanos: delta,
        uncertainty_nanos: avg_rtt / 2,
        samples: samples.len() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lt(ms: i64) -> LocalTime {
        LocalTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn symmetric_probe_recovers_exact_delta() {
        // Coordinator sends at 0, receives at 100 ms; the agent (clock
        // +5 s) read its clock at true midpoint 50 ms → reading 5050 ms.
        let p = ProbeSample { sent: lt(0), received: lt(100), agent_reading: lt(5050) };
        assert_eq!(p.rtt_nanos(), 100_000_000);
        assert_eq!(p.delta_nanos(), 5_000_000_000);
        let e = estimate(&[p]);
        assert_eq!(e.delta_nanos, 5_000_000_000);
        assert_eq!(e.uncertainty_nanos, 50_000_000);
        assert_eq!(e.samples, 1);
    }

    #[test]
    fn asymmetric_delay_error_is_bounded_by_half_rtt() {
        // True delta 0, but the request took 80 ms and the reply 20 ms:
        // reading taken at true 80 ms, midpoint assumed 50 ms → error 30 ms
        // < half RTT (50 ms).
        let p = ProbeSample { sent: lt(0), received: lt(100), agent_reading: lt(80) };
        let err = p.delta_nanos().abs();
        assert_eq!(err, 30_000_000);
        assert!(err <= p.rtt_nanos() / 2);
    }

    #[test]
    fn averaging_reduces_noise() {
        // Two probes with opposite asymmetries average to the truth.
        let p1 = ProbeSample { sent: lt(0), received: lt(100), agent_reading: lt(80) };
        let p2 = ProbeSample { sent: lt(200), received: lt(300), agent_reading: lt(220) };
        let e = estimate(&[p1, p2]);
        assert_eq!(e.delta_nanos, 0);
        assert_eq!(e.samples, 2);
    }

    #[test]
    fn negative_delta_round_trip() {
        // Agent clock 2 s *behind*.
        let p = ProbeSample { sent: lt(0), received: lt(100), agent_reading: lt(-1950) };
        let e = estimate(&[p]);
        assert_eq!(e.delta_nanos, -2_000_000_000);
        // Mapping an agent reading back onto the coordinator timeline.
        assert_eq!(e.to_coordinator(lt(-1950)), lt(50));
    }

    #[test]
    #[should_panic(expected = "zero probes")]
    fn estimate_requires_samples() {
        let _ = estimate(&[]);
    }

    /// Property test for the documented asymmetry bound: for *any* true
    /// delta, send time, and request/response delay split, the estimation
    /// error is exactly `(d_resp − d_req) / 2` (up to integer-division
    /// rounding) and never exceeds half the RTT. Deterministic LCG sweep
    /// so the corpus is reproducible.
    #[test]
    fn asymmetry_error_is_exactly_half_the_delay_imbalance() {
        let mut state: u64 = 0x9e3779b97f4a7c15;
        let mut next = move |bound: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % bound
        };
        for _ in 0..2_000 {
            let sent_nanos = next(3_600_000_000_000) as i64 - 1_800_000_000_000;
            let d_req = next(500_000_000) as i64 + 1; // 1 ns ‥ 500 ms out
            let d_resp = next(500_000_000) as i64 + 1; // 1 ns ‥ 500 ms back
            let true_delta = next(20_000_000_000) as i64 - 10_000_000_000; // ±10 s
            let reading = sent_nanos + d_req + true_delta;
            let p = ProbeSample {
                sent: LocalTime::from_nanos(sent_nanos),
                received: LocalTime::from_nanos(sent_nanos + d_req + d_resp),
                agent_reading: LocalTime::from_nanos(reading),
            };
            let err = p.delta_nanos() - true_delta;
            let expected = (d_req - d_resp) / 2;
            // Integer midpoint division may shave one nanosecond.
            assert!(
                (err - expected).abs() <= 1,
                "error {err} != (d_req−d_resp)/2 = {expected} (d_req={d_req}, d_resp={d_resp})"
            );
            assert!(
                err.abs() <= p.rtt_nanos() / 2 + 1,
                "error {err} exceeds half RTT {}",
                p.rtt_nanos() / 2
            );
        }
    }
}
