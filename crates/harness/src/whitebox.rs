//! White-box replica probing — the paper's future-work direction
//! ("extend this methodology … also considering white-box testing"),
//! implemented.
//!
//! A [`WhiteboxProbe`] node periodically issues `Inspect` operations
//! directly against **every replica** of the service under test, recording
//! each replica's authoritative snapshot. Comparing the replica-level
//! divergence against the agents' black-box observations separates
//!
//! * **true replica divergence** — the replicas' states genuinely differ
//!   (weak replication at work), from
//! * **read-path artifacts** — the replicas agree, but caches, secondary
//!   indices or interest ranking make clients *perceive* divergence.
//!
//! The distinction is exactly the paper's explanation for Facebook Feed's
//! near-100 % order divergence ("explained by the semantics of the
//! service"), which our white-box report can now quantify.

use crate::proto::Msg;
use conprobe_core::trace::{AgentId, OpRecord, TestTrace, Timestamp};
use conprobe_core::window::{all_pair_windows, WindowAnalysis, WindowKind};
use conprobe_services::{ClientOp, NetMsg, OpResult};
use conprobe_sim::{Context, Node, NodeId, SimDuration};
use conprobe_store::PostId;

const TOKEN_TICK: u64 = 1;

/// One white-box sample: which replica, when (true time), what state.
#[derive(Debug, Clone)]
pub struct ReplicaSample {
    /// Index of the replica in the cluster's replica list.
    pub replica: usize,
    /// True simulation time of the snapshot (instrumentation may use true
    /// time; only the black-box agents are clock-blind).
    pub at_nanos: u64,
    /// The replica's authoritative snapshot.
    pub seq: Vec<PostId>,
}

/// A node that snapshots every replica at a fixed period.
pub struct WhiteboxProbe {
    replicas: Vec<NodeId>,
    period: SimDuration,
    pending: std::collections::HashMap<u64, usize>,
    next_req: u64,
    samples: Vec<ReplicaSample>,
}

impl WhiteboxProbe {
    /// Creates a probe over the given replicas.
    pub fn new(replicas: Vec<NodeId>, period: SimDuration) -> Self {
        WhiteboxProbe {
            replicas,
            period,
            pending: std::collections::HashMap::new(),
            next_req: 0,
            samples: Vec::new(),
        }
    }

    /// The collected samples (after the run).
    pub fn samples(&self) -> &[ReplicaSample] {
        &self.samples
    }
}

impl Node<Msg> for WhiteboxProbe {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        ctx.set_timer(SimDuration::ZERO, TOKEN_TICK);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
        if let NetMsg::Response { req_id, result: OpResult::ReadOk(seq) } = msg {
            if let Some(replica) = self.pending.remove(&req_id) {
                self.samples.push(ReplicaSample {
                    replica,
                    at_nanos: ctx.true_now().as_nanos(),
                    seq,
                });
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: u64) {
        if token != TOKEN_TICK {
            return;
        }
        for (i, replica) in self.replicas.clone().into_iter().enumerate() {
            let req_id = self.next_req;
            self.next_req += 1;
            self.pending.insert(req_id, i);
            ctx.send(replica, NetMsg::Request { req_id, op: ClientOp::Inspect });
        }
        ctx.set_timer(self.period, TOKEN_TICK);
    }
}

/// Replica-level ground truth derived from white-box samples.
#[derive(Debug, Clone)]
pub struct WhiteboxReport {
    /// Content-divergence windows between replica pairs (simultaneous
    /// divergence of the latest snapshots).
    pub content_windows: Vec<WindowAnalysis>,
    /// Order-divergence windows between replica pairs.
    pub order_windows: Vec<WindowAnalysis>,
    /// Any-pair content divergence between replica snapshots (the same
    /// §III presence semantics the black-box checkers use — divergence can
    /// exist across time even when no two snapshots diverge simultaneously,
    /// the paper's zero-window subtlety).
    pub content_presence: bool,
    /// Any-pair order divergence between replica snapshots.
    pub order_presence: bool,
    /// Number of samples collected.
    pub samples: usize,
    /// Number of replicas probed.
    pub replicas: usize,
}

impl WhiteboxReport {
    /// Builds the report from raw samples by treating each replica as a
    /// "client" and reusing the §III divergence machinery.
    pub fn from_samples(samples: &[ReplicaSample], replicas: usize) -> Self {
        let ops: Vec<OpRecord<PostId>> = samples
            .iter()
            .map(|s| OpRecord {
                agent: AgentId(s.replica as u32),
                invoke: Timestamp::from_nanos(s.at_nanos as i64),
                response: Timestamp::from_nanos(s.at_nanos as i64),
                kind: conprobe_core::trace::OpKind::Read { seq: s.seq.clone() },
            })
            .collect();
        let trace = TestTrace::new(ops);
        WhiteboxReport {
            content_windows: all_pair_windows(&trace, WindowKind::Content),
            order_windows: all_pair_windows(&trace, WindowKind::Order),
            content_presence: !conprobe_core::checkers::check_content_divergence(&trace).is_empty(),
            order_presence: !conprobe_core::checkers::check_order_divergence(&trace).is_empty(),
            samples: samples.len(),
            replicas,
        }
    }

    /// Whether any replica pair ever truly diverged in content (any-pair
    /// presence, matching the black-box checkers' semantics).
    pub fn any_true_content_divergence(&self) -> bool {
        self.content_presence
    }

    /// Whether any replica pair ever truly diverged in order.
    pub fn any_true_order_divergence(&self) -> bool {
        self.order_presence
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(replica: usize, ms: u64, seq: Vec<u32>) -> ReplicaSample {
        ReplicaSample {
            replica,
            at_nanos: ms * 1_000_000,
            seq: seq.into_iter().map(|s| PostId::new(conprobe_store::AuthorId(0), s)).collect(),
        }
    }

    #[test]
    fn identical_replicas_show_no_divergence() {
        let samples = vec![sample(0, 100, vec![1, 2]), sample(1, 110, vec![1, 2])];
        let report = WhiteboxReport::from_samples(&samples, 2);
        assert!(!report.any_true_content_divergence());
        assert!(!report.any_true_order_divergence());
        assert_eq!(report.samples, 2);
    }

    #[test]
    fn diverged_replicas_are_detected() {
        let samples = vec![
            sample(0, 100, vec![1]),
            sample(1, 110, vec![2]),
            sample(0, 500, vec![1, 2]),
            sample(1, 510, vec![1, 2]),
        ];
        let report = WhiteboxReport::from_samples(&samples, 2);
        assert!(report.any_true_content_divergence());
        assert!(report.content_windows[0].converged());
    }

    #[test]
    fn order_flip_across_replicas_is_detected() {
        let samples = vec![sample(0, 100, vec![1, 2]), sample(1, 110, vec![2, 1])];
        let report = WhiteboxReport::from_samples(&samples, 2);
        assert!(report.any_true_order_divergence());
    }
}
