//! The measurement agent (§IV–V).
//!
//! One agent runs in each of Oregon, Tokyo and Ireland. An agent is a
//! scripted state machine:
//!
//! * it always answers the coordinator's clock probes with its local clock
//!   reading;
//! * on `Start` it waits until the agent-local start time the coordinator
//!   computed, then runs the test script:
//!   * **Test 1** — continuous background reads every `read_period`; agent 0
//!     writes its two messages immediately (the second as soon as the first
//!     is acknowledged); agent *i* > 0 writes its two messages when a read
//!     first shows agent *i−1*'s second message; every agent reports
//!     completion when it has seen the last agent's second message (M6);
//!   * **Test 2** — one write at the synchronized start instant; background
//!     reads at `read_period` for the first `fast_reads` reads, then at
//!     `slow_period` (the paper's adaptive schedule working around rate
//!     limits), reporting completion after `reads_target` reads;
//! * every operation is logged with **local** invocation/response times and
//!   its output — the agent has no access to true time;
//! * on `Stop` it ships the log to the coordinator.
//!
//! Optionally the agent routes reads and write-acks through a
//! [`SessionGuard`] (the A3 extension experiment): the *corrected* view is
//! then what gets logged, modelling an application that masks session
//! anomalies client-side.

use crate::proto::{test1_post, AgentTestPlan, HarnessMsg, LocalOpRecord, Msg, TestKind};
use crate::transport::{SimRpc, Transport};
use conprobe_core::trace::OpKind;
use conprobe_services::{ClientOp, NetMsg, OpResult};
use conprobe_session::{GuardConfig, IssueOrder, SessionGuard};
use conprobe_sim::{Context, LocalTime, Node, NodeId, SimDuration};
use conprobe_store::{Post, PostId};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Issue order over [`PostId`]s: same author ⇒ ordered by sequence number,
/// with derivable predecessors — the paper's session-id + sequence-number
/// scheme instantiated for our post keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct PostIdOrder;

impl IssueOrder<PostId> for PostIdOrder {
    fn same_session_order(&self, a: &PostId, b: &PostId) -> Option<Ordering> {
        (a.author == b.author).then(|| a.seq.cmp(&b.seq))
    }

    fn predecessor(&self, k: &PostId) -> Option<PostId> {
        (k.seq > 1).then(|| PostId::new(k.author, k.seq - 1))
    }
}

const TOKEN_START: u64 = 1;
const TOKEN_READ: u64 = 2;
const TOKEN_HEARTBEAT: u64 = 3;
/// Deadline for the post-Stop write-flush grace period.
const TOKEN_FLUSH: u64 = 4;
/// High-bit namespace for throttle-backoff timers.
const TOKEN_THROTTLED: u64 = 1 << 62;
/// High-bit namespace for per-request retry timers: `TOKEN_RETRY | req_id`.
const TOKEN_RETRY: u64 = 1 << 63;
/// Liveness beacon period (agent → coordinator).
const HEARTBEAT_PERIOD: SimDuration = SimDuration::from_secs(1);
/// First retransmit delay for an unanswered request. The paper's HTTP
/// client had TCP retransmits and library-level retries; the simulated WAN
/// can drop messages when loss is configured.
const RETRY_INITIAL: SimDuration = SimDuration::from_secs(1);
/// Cap on the exponentially growing retransmit delay.
const RETRY_CAP: SimDuration = SimDuration::from_secs(8);
/// Transmissions per operation (first send included) before the agent
/// abandons it as undeliverable.
const MAX_ATTEMPTS: u32 = 8;
/// Consecutive throttle rejections that trip the read-period widening
/// circuit.
const THROTTLE_TRIP: u32 = 3;
/// Cap on the read-period widening factor under a sustained throttle storm.
const WIDEN_CAP: u64 = 8;
/// How long a stopped agent holds its log back while a write ack is still
/// outstanding. One retransmit round fits inside it, so an ack lost right
/// at the end of the test is usually recovered; after the grace the log
/// ships as-is — better a log missing one record than a quarantined agent.
const STOP_FLUSH_GRACE: SimDuration = SimDuration::from_millis(1500);

enum PendingOp {
    Read,
    Write(PostId),
}

/// One in-flight request awaiting a response.
struct Pending {
    invoke: LocalTime,
    kind: PendingOp,
    op: ClientOp,
    /// Transmissions so far (first send included).
    attempts: u32,
}

/// Transport-level counters for one agent (diagnostics and the fault
/// ledger): how hard the resilient RPC layer had to work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RpcStats {
    /// Retransmissions of unanswered requests.
    pub retransmits: u64,
    /// Operations given up on after [`MAX_ATTEMPTS`] transmissions.
    pub abandoned: u64,
    /// Responses rejected by the service's rate limiter.
    pub throttled: u64,
    /// Longest run of consecutive throttle rejections.
    pub max_throttle_streak: u32,
}

/// Shared observability handles for the agent's transport layer, resolved
/// in `on_start` when the world has a sink installed. The counters are
/// global across agents (`harness.agent.rpc.*`): the interesting signal is
/// the fleet-wide retry/abandon volume a fault plan induces.
struct AgentObs {
    sink: conprobe_sim::ObsSink,
    retransmits: conprobe_obs::Counter,
    abandoned: conprobe_obs::Counter,
    throttled: conprobe_obs::Counter,
}

impl AgentObs {
    fn new(sink: &conprobe_sim::ObsSink) -> Self {
        let m = &sink.metrics;
        AgentObs {
            retransmits: m.counter("harness.agent.rpc.retransmits"),
            abandoned: m.counter("harness.agent.rpc.abandoned"),
            throttled: m.counter("harness.agent.rpc.throttled"),
            sink: sink.clone(),
        }
    }
}

/// The deployed measurement agent.
pub struct AgentNode {
    agent_index: u32,
    coordinator: Option<NodeId>,
    plan: Option<AgentTestPlan>,
    records: Vec<LocalOpRecord>,
    pending: HashMap<u64, Pending>,
    next_req: u64,
    reads_issued: u32,
    reads_done: u32,
    next_write_seq: u32,
    triggered: bool,
    completion_sent: bool,
    stopped: bool,
    rpc: RpcStats,
    /// Consecutive throttle rejections with no success in between; drives
    /// the read-period widening circuit.
    throttle_streak: u32,
    /// Operations rejected by the rate limiter, awaiting a backoff retry.
    throttle_backlog: HashMap<u64, (PendingOp, ClientOp)>,
    next_backoff: u64,
    guard: Option<SessionGuard<PostId, PostIdOrder>>,
    use_guard: bool,
    obs: Option<AgentObs>,
    /// Where requests go. Installed on `Start` (aimed at the plan's
    /// service front door); every transmission — first sends and
    /// retransmits alike — flows through this seam, so the sim and wire
    /// paths share the agent's entire retry/backoff/logging machinery.
    transport: Option<Box<dyn Transport>>,
}

impl AgentNode {
    /// Creates an idle agent with the given index (0-based; the paper's
    /// Agent⟨i+1⟩). If `use_guard` is set, reads are filtered through a
    /// [`SessionGuard`] before logging.
    pub fn new(agent_index: u32, use_guard: bool) -> Self {
        AgentNode {
            agent_index,
            coordinator: None,
            plan: None,
            records: Vec::new(),
            pending: HashMap::new(),
            next_req: 0,
            reads_issued: 0,
            reads_done: 0,
            next_write_seq: 1,
            triggered: false,
            completion_sent: false,
            stopped: false,
            rpc: RpcStats::default(),
            throttle_streak: 0,
            throttle_backlog: HashMap::new(),
            next_backoff: 0,
            guard: None,
            use_guard,
            obs: None,
            transport: None,
        }
    }

    /// Operations logged so far (diagnostics).
    pub fn logged(&self) -> usize {
        self.records.len()
    }

    /// Requests rejected by the service's rate limit (diagnostics).
    pub fn throttled(&self) -> u64 {
        self.rpc.throttled
    }

    /// Transport-level RPC counters (diagnostics and the fault ledger).
    pub fn rpc_stats(&self) -> RpcStats {
        self.rpc
    }

    fn plan(&self) -> &AgentTestPlan {
        self.plan.as_ref().expect("agent acted before receiving a plan")
    }

    /// Exponential backoff with deterministic jitter: `attempts`
    /// transmissions have happened; the next retry fires after
    /// `min(RETRY_INITIAL·2^(attempts−1), RETRY_CAP)` plus up to 25 %
    /// jitter drawn from the agent's own random stream (so retransmits
    /// de-synchronize across agents without perturbing any other stream).
    fn retry_delay(&self, ctx: &mut Context<'_, Msg>, attempts: u32) -> SimDuration {
        let shift = attempts.saturating_sub(1).min(6);
        let base = RETRY_INITIAL.saturating_mul(1 << shift).min(RETRY_CAP);
        let jitter = ctx.rng().gen_range(0..base.as_nanos() / 4 + 1);
        base + SimDuration::from_nanos(jitter)
    }

    /// Read-period multiplier while the throttle circuit is tripped: 1×
    /// below [`THROTTLE_TRIP`] consecutive rejections, then widening with
    /// the streak up to [`WIDEN_CAP`]×.
    fn widen_factor(&self) -> u64 {
        if self.throttle_streak < THROTTLE_TRIP {
            1
        } else {
            u64::from(self.throttle_streak - THROTTLE_TRIP + 2).min(WIDEN_CAP)
        }
    }

    /// The installed transport. Like [`Self::plan`], only valid once a
    /// `Start` has arrived — which is the only path that issues requests.
    fn transport(&mut self) -> &mut dyn Transport {
        self.transport.as_deref_mut().expect("agent issued a request before receiving a plan")
    }

    fn issue(&mut self, ctx: &mut Context<'_, Msg>, op: ClientOp, kind: PendingOp) {
        let req_id = self.next_req;
        self.next_req += 1;
        self.pending
            .insert(req_id, Pending { invoke: ctx.now_local(), kind, op: op.clone(), attempts: 1 });
        self.transport().send_request(ctx, req_id, op);
        let delay = self.retry_delay(ctx, 1);
        ctx.set_timer(delay, TOKEN_RETRY | req_id);
    }

    fn issue_read(&mut self, ctx: &mut Context<'_, Msg>) {
        self.reads_issued += 1;
        self.issue(ctx, ClientOp::Read, PendingOp::Read);
    }

    fn issue_write(&mut self, ctx: &mut Context<'_, Msg>) {
        let id = test1_post(self.plan().agent_index, self.next_write_seq);
        self.next_write_seq += 1;
        let post = Post::new(id, format!("post {id}"), ctx.now_local());
        self.issue(ctx, ClientOp::Write(post), PendingOp::Write(id));
    }

    fn schedule_next_read(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.stopped {
            return;
        }
        let plan = self.plan();
        let period = match plan.kind {
            TestKind::Test1 => plan.read_period,
            TestKind::Test2 => {
                if self.reads_issued >= plan.reads_target {
                    return; // quota reached — Test 2 agents stop reading
                }
                if self.reads_issued < plan.fast_reads {
                    plan.read_period
                } else {
                    plan.slow_period
                }
            }
        };
        // A tripped throttle circuit widens the period: under a sustained
        // `Throttled` storm, hammering the front door at full rate only
        // deepens the storm and bloats the retry backlog.
        ctx.set_timer(period.saturating_mul(self.widen_factor()), TOKEN_READ);
    }

    /// Handles a `TOKEN_RETRY | req_id` timer: retransmits the operation
    /// with growing backoff (replicas deduplicate writes by post id; reads
    /// are idempotent), or abandons it once the attempt budget is spent —
    /// the request is undeliverable (dead service or severed link), and
    /// the coordinator's liveness machinery handles a stalled test.
    fn retransmit(&mut self, ctx: &mut Context<'_, Msg>, token: u64) {
        let req_id = token & !TOKEN_RETRY;
        let retransmit = match self.pending.get_mut(&req_id) {
            None => return, // answered in the meantime
            Some(p) if p.attempts >= MAX_ATTEMPTS => None,
            Some(p) => {
                p.attempts += 1;
                Some((p.op.clone(), p.attempts))
            }
        };
        match retransmit {
            Some((op, attempts)) => {
                self.rpc.retransmits += 1;
                if let Some(obs) = &self.obs {
                    obs.retransmits.inc();
                }
                self.transport().send_request(ctx, req_id, op);
                let delay = self.retry_delay(ctx, attempts);
                ctx.set_timer(delay, TOKEN_RETRY | req_id);
            }
            None => {
                self.pending.remove(&req_id);
                self.rpc.abandoned += 1;
                if let Some(obs) = &self.obs {
                    obs.abandoned.inc();
                    let (agent, now) = (self.agent_index, ctx.true_now());
                    if obs.sink.log.enabled(conprobe_obs::Severity::Warn, "harness") {
                        obs.sink.log.record(
                            now.as_nanos(),
                            conprobe_obs::Severity::Warn,
                            "harness",
                            format!("agent {agent} abandoned req {req_id} after {MAX_ATTEMPTS} attempts"),
                        );
                    }
                }
            }
        }
    }

    fn ship_log(&mut self, ctx: &mut Context<'_, Msg>) {
        if let Some(coord) = self.coordinator {
            ctx.send(
                coord,
                NetMsg::App(HarnessMsg::Log {
                    agent_index: self.agent_index,
                    records: self.records.clone(),
                }),
            );
        }
    }

    fn report_completion(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.completion_sent {
            return;
        }
        self.completion_sent = true;
        let idx = self.plan().agent_index;
        if let Some(coord) = self.coordinator {
            ctx.send(coord, NetMsg::App(HarnessMsg::CompletionSeen { agent_index: idx }));
        }
    }

    fn handle_read_result(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        invoke: LocalTime,
        raw: Vec<PostId>,
    ) {
        let seq = match &mut self.guard {
            Some(g) => g.filter_read(&raw),
            None => raw,
        };
        self.reads_done += 1;
        let response = ctx.now_local();
        self.records.push(LocalOpRecord {
            invoke,
            response,
            kind: OpKind::Read { seq: seq.clone() },
        });
        let plan = self.plan().clone();
        match plan.kind {
            TestKind::Test1 => {
                // Staggering: my writes are triggered by the predecessor's
                // second message appearing in my view.
                if !self.triggered && plan.agent_index > 0 {
                    let trigger = test1_post(plan.agent_index - 1, 2);
                    if seq.contains(&trigger) {
                        self.triggered = true;
                        self.issue_write(ctx);
                    }
                }
                // Completion: the last agent's second message (M6).
                let m_last = test1_post(plan.total_agents - 1, 2);
                if seq.contains(&m_last) {
                    self.report_completion(ctx);
                }
            }
            TestKind::Test2 => {
                if self.reads_done >= plan.reads_target {
                    self.report_completion(ctx);
                }
            }
        }
    }
}

impl Node<Msg> for AgentNode {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        self.obs = ctx.obs().map(AgentObs::new);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            NetMsg::App(HarnessMsg::TimeProbe { probe_id }) => {
                ctx.send(
                    from,
                    NetMsg::App(HarnessMsg::TimeReply { probe_id, local: ctx.now_local() }),
                );
            }
            NetMsg::App(HarnessMsg::Start(plan)) => {
                ctx.send(from, NetMsg::App(HarnessMsg::StartAck { agent_index: self.agent_index }));
                if self.plan.is_some() {
                    return; // duplicate Start (retry): already running
                }
                self.coordinator = Some(from);
                self.records.clear();
                self.pending.clear();
                self.reads_issued = 0;
                self.reads_done = 0;
                self.next_write_seq = 1;
                self.triggered = false;
                self.completion_sent = false;
                self.stopped = false;
                self.guard =
                    self.use_guard.then(|| SessionGuard::new(GuardConfig::default(), PostIdOrder));
                debug_assert_eq!(plan.agent_index, self.agent_index, "plan routed to wrong agent");
                self.transport = Some(Box::new(SimRpc::new(plan.service_entry)));
                let now = ctx.now_local();
                let wait = plan.start_at_local.delta_nanos(now).max(0) as u64;
                self.plan = Some(*plan);
                ctx.set_timer(SimDuration::from_nanos(wait), TOKEN_START);
                // Liveness beacons run from plan receipt until Stop.
                ctx.set_timer(SimDuration::ZERO, TOKEN_HEARTBEAT);
            }
            NetMsg::App(HarnessMsg::Stop) => {
                // Stop may arrive repeatedly (the coordinator retries until
                // it has our log), and even before a Start if that was
                // lost — always answer with what we have.
                let first = !self.stopped;
                self.stopped = true;
                self.coordinator = Some(from);
                if first {
                    // In-flight reads are simply incomplete operations and
                    // are dropped. An in-flight *write* may well have taken
                    // effect with only its ack lost, so it keeps
                    // retransmitting through a short grace before the log
                    // ships — losing its record would understate the trace.
                    self.pending.retain(|_, p| matches!(p.kind, PendingOp::Write(_)));
                    self.throttle_backlog.clear();
                    if !self.pending.is_empty() {
                        ctx.set_timer(STOP_FLUSH_GRACE, TOKEN_FLUSH);
                        return;
                    }
                }
                self.ship_log(ctx);
            }
            NetMsg::Response { req_id, result } => {
                let Some(Pending { invoke, kind, op, .. }) = self.pending.remove(&req_id) else {
                    return; // response to a request we no longer track
                };
                if self.stopped {
                    // Only a late write ack still matters: record it, and
                    // release the held log once no write is outstanding.
                    if let (PendingOp::Write(id), OpResult::WriteAck(acked)) = (&kind, &result) {
                        debug_assert_eq!(id, acked);
                        self.records.push(LocalOpRecord {
                            invoke,
                            response: ctx.now_local(),
                            kind: OpKind::Write { id: *id },
                        });
                        if self.pending.is_empty() {
                            self.ship_log(ctx);
                        }
                    }
                    return;
                }
                match (kind, result) {
                    (PendingOp::Write(id), OpResult::WriteAck(acked)) => {
                        debug_assert_eq!(id, acked);
                        self.throttle_streak = 0;
                        self.records.push(LocalOpRecord {
                            invoke,
                            response: ctx.now_local(),
                            kind: OpKind::Write { id },
                        });
                        if let Some(g) = &mut self.guard {
                            g.note_write_ack(id);
                        }
                        // "Each agent performs two consecutive writes": the
                        // second goes out as soon as the first is
                        // acknowledged.
                        if self.plan().kind == TestKind::Test1 && self.next_write_seq == 2 {
                            self.issue_write(ctx);
                        }
                    }
                    (PendingOp::Read, OpResult::ReadOk(seq)) => {
                        self.throttle_streak = 0;
                        self.handle_read_result(ctx, invoke, seq);
                    }
                    (kind, OpResult::Throttled) => {
                        // Back off and retry: a throttled write would
                        // otherwise stall Test 1's chain. The backoff
                        // itself widens with the streak, like the read
                        // period.
                        self.rpc.throttled += 1;
                        if let Some(obs) = &self.obs {
                            obs.throttled.inc();
                        }
                        self.throttle_streak += 1;
                        self.rpc.max_throttle_streak =
                            self.rpc.max_throttle_streak.max(self.throttle_streak);
                        let token = TOKEN_THROTTLED | self.next_backoff;
                        self.next_backoff += 1;
                        let period = self.plan().read_period.saturating_mul(self.widen_factor());
                        self.throttle_backlog.insert(token, (kind, op));
                        ctx.set_timer(period, token);
                    }
                    _ => {}
                }
            }
            // Requests / replication traffic are not for agents.
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: u64) {
        if self.plan.is_none() {
            return;
        }
        if self.stopped {
            match token {
                // The post-Stop grace expired: stop chasing unacked writes
                // and ship whatever the log holds.
                TOKEN_FLUSH => {
                    self.rpc.abandoned += self.pending.len() as u64;
                    if let Some(obs) = &self.obs {
                        obs.abandoned.add(self.pending.len() as u64);
                    }
                    self.pending.clear();
                    self.ship_log(ctx);
                }
                // Write retransmissions keep running during the grace.
                t if t & TOKEN_RETRY != 0 => self.retransmit(ctx, t),
                _ => {}
            }
            return;
        }
        if token & TOKEN_THROTTLED != 0 && token & TOKEN_RETRY == 0 {
            if let Some((kind, op)) = self.throttle_backlog.remove(&token) {
                // The throttled attempt failed visibly, so the retry is a
                // *new* operation with a fresh invocation time (unlike a
                // lost-message retransmit, where the original request may
                // have taken effect).
                self.issue(ctx, op, kind);
            }
            return;
        }
        if token & TOKEN_RETRY != 0 {
            self.retransmit(ctx, token);
            return;
        }
        match token {
            TOKEN_HEARTBEAT => {
                if let Some(coord) = self.coordinator {
                    ctx.send(
                        coord,
                        NetMsg::App(HarnessMsg::Heartbeat { agent_index: self.agent_index }),
                    );
                    // CompletionSeen is not acknowledged, so a lossy link
                    // can eat it and stall the coordinator until the test
                    // timeout. Re-announce on every beacon until Stop; the
                    // coordinator treats duplicates as idempotent.
                    if self.completion_sent {
                        ctx.send(
                            coord,
                            NetMsg::App(HarnessMsg::CompletionSeen {
                                agent_index: self.agent_index,
                            }),
                        );
                    }
                }
                ctx.set_timer(HEARTBEAT_PERIOD, TOKEN_HEARTBEAT);
            }
            TOKEN_START => {
                match self.plan().kind {
                    TestKind::Test1 => {
                        if self.plan().agent_index == 0 {
                            self.triggered = true;
                            self.issue_write(ctx);
                        }
                    }
                    TestKind::Test2 => {
                        // The synchronized simultaneous write.
                        self.issue_write(ctx);
                    }
                }
                self.issue_read(ctx);
                self.schedule_next_read(ctx);
            }
            TOKEN_READ => {
                self.issue_read(ctx);
                self.schedule_next_read(ctx);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_id_order_oracle() {
        let a = PostId::new(conprobe_store::AuthorId(1), 1);
        let b = PostId::new(conprobe_store::AuthorId(1), 2);
        let c = PostId::new(conprobe_store::AuthorId(2), 1);
        assert_eq!(PostIdOrder.same_session_order(&a, &b), Some(Ordering::Less));
        assert_eq!(PostIdOrder.same_session_order(&b, &a), Some(Ordering::Greater));
        assert_eq!(PostIdOrder.same_session_order(&a, &c), None);
        assert_eq!(PostIdOrder.predecessor(&b), Some(a));
        assert_eq!(PostIdOrder.predecessor(&a), None);
    }

    #[test]
    fn new_agent_is_idle() {
        let a = AgentNode::new(0, false);
        assert_eq!(a.logged(), 0);
        assert_eq!(a.throttled(), 0);
        assert!(a.plan.is_none());
    }
}
