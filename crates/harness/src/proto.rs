//! Coordinator ↔ agent protocol, carried in the service network's
//! application slot.
//!
//! All harness traffic crosses the same simulated WAN as the measured
//! requests, so clock-sync probes experience real RTTs (which is the whole
//! point of the paper's uncertainty analysis).

use conprobe_core::trace::OpKind;
use conprobe_services::NetMsg;
use conprobe_sim::NodeId;
use conprobe_sim::{LocalTime, SimDuration};
use conprobe_store::PostId;

/// The two test designs of §IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TestKind {
    /// Staggered write pairs; detects the session-guarantee anomalies.
    Test1,
    /// Simultaneous writes; measures divergence and its windows.
    Test2,
}

impl std::fmt::Display for TestKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestKind::Test1 => f.write_str("Test 1"),
            TestKind::Test2 => f.write_str("Test 2"),
        }
    }
}

/// One operation as logged by an agent, in the agent's *local* time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalOpRecord {
    /// Local invocation time.
    pub invoke: LocalTime,
    /// Local response time.
    pub response: LocalTime,
    /// The operation and its payload/output.
    pub kind: OpKind<PostId>,
}

/// The per-test marching orders an agent receives from the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentTestPlan {
    /// Which test design to run.
    pub kind: TestKind,
    /// This agent's index (0-based; the paper's Agent⟨i+1⟩).
    pub agent_index: u32,
    /// Total number of agents in the test.
    pub total_agents: u32,
    /// The service front door this agent talks to.
    pub service_entry: NodeId,
    /// Background read period (Tables I/II: 300 ms).
    pub read_period: SimDuration,
    /// Test 2: number of initial fast reads before switching to
    /// `slow_period` (Table II: 14×/13×/20×/20×).
    pub fast_reads: u32,
    /// Test 2: read period after the fast phase (Table II: 1 s).
    pub slow_period: SimDuration,
    /// Test 2: total reads after which this agent reports completion.
    pub reads_target: u32,
    /// Agent-local time at which to start the test (coordinator-computed
    /// via the estimated delta, so that true start times align).
    pub start_at_local: LocalTime,
}

/// Application messages exchanged between coordinator and agents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessMsg {
    /// Coordinator → agent: read your clock.
    TimeProbe {
        /// Correlation id.
        probe_id: u64,
    },
    /// Agent → coordinator: my clock reads `local`.
    TimeReply {
        /// Echoed correlation id.
        probe_id: u64,
        /// The agent's local clock reading at receipt of the probe.
        local: LocalTime,
    },
    /// Coordinator → agent: run this test.
    Start(Box<AgentTestPlan>),
    /// Agent → coordinator: the plan arrived (enables Start retries under
    /// message loss).
    StartAck {
        /// The acknowledging agent's index.
        agent_index: u32,
    },
    /// Agent → coordinator: my completion condition is met (Test 1: I saw
    /// the last agent's last write; Test 2: I performed my read quota).
    CompletionSeen {
        /// The reporting agent's index.
        agent_index: u32,
    },
    /// Agent → coordinator: periodic liveness beacon, sent once per second
    /// from test start until `Stop`. Lets the coordinator distinguish a
    /// slow agent from a dead or unreachable one and degrade gracefully
    /// instead of waiting out the full test timeout.
    Heartbeat {
        /// The beaconing agent's index.
        agent_index: u32,
    },
    /// Coordinator → agent: stop and ship your log.
    Stop,
    /// Agent → coordinator: my full operation log.
    Log {
        /// The reporting agent's index.
        agent_index: u32,
        /// All operations, in local time.
        records: Vec<LocalOpRecord>,
    },
}

/// The complete message type flowing through a measurement world.
pub type Msg = NetMsg<HarnessMsg>;

/// The post id of message `M(2·agent_index + seq)` in the paper's Test 1
/// naming: agent `i` (0-based) writes its messages as seq 1 and 2.
pub fn test1_post(agent_index: u32, seq: u32) -> PostId {
    PostId::new(conprobe_store::AuthorId(agent_index), seq)
}

/// The Writes-Follows-Reads trigger pairs of Test 1: *"M3 and M5 are the
/// only write operations that require the observation of M2 and M4,
/// respectively, as a trigger."*
pub fn test1_trigger_pairs(total_agents: u32) -> Vec<(PostId, PostId)> {
    (1..total_agents).map(|i| (test1_post(i - 1, 2), test1_post(i, 1))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_pairs_match_paper_naming() {
        // With 3 agents: M1..M6 = (a0,1),(a0,2),(a1,1),(a1,2),(a2,1),(a2,2).
        // Pairs: (M2,M3) and (M4,M5).
        let pairs = test1_trigger_pairs(3);
        assert_eq!(
            pairs,
            vec![(test1_post(0, 2), test1_post(1, 1)), (test1_post(1, 2), test1_post(2, 1)),]
        );
    }

    #[test]
    fn trigger_pairs_single_agent_is_empty() {
        assert!(test1_trigger_pairs(1).is_empty());
    }

    #[test]
    fn test_kind_display() {
        assert_eq!(TestKind::Test1.to_string(), "Test 1");
        assert_eq!(TestKind::Test2.to_string(), "Test 2");
    }
}
