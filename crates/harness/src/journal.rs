//! Durable campaign journal: crash-safe persistence and resume.
//!
//! The paper's study ran for weeks against live rate-limited APIs; losing
//! a campaign to a coordinator crash would have cost unrepeatable
//! measurements. This module gives conprobe the same survivability: as a
//! campaign runs, every finished (or quarantined) test instance is
//! appended to a journal file, and a later invocation can recover the
//! journal and re-run *only* the missing instances — with byte-identical
//! study output, because the per-instance seeds are derived
//! deterministically and the analysis is a pure function of the persisted
//! trace.
//!
//! ## On-disk format
//!
//! One record per line (JSONL), each framed for corruption detection:
//!
//! ```text
//! cpj1 <payload-len> <fnv64-hex> <payload-json>\n
//! ```
//!
//! * `cpj1` — format magic/version.
//! * `<payload-len>` — decimal byte length of the payload.
//! * `<fnv64-hex>` — 16-digit FNV-1a hash of the payload bytes.
//! * `<payload-json>` — one compact JSON object (compact JSON never
//!   contains a raw newline, so the file stays line-oriented).
//!
//! Appends are a single `write_all` followed by `fsync`, so a crash —
//! including SIGKILL mid-write — leaves at most one truncated tail line.
//!
//! ## Recovery rules
//!
//! * A *complete* line that frames and checksums correctly is a record.
//! * Trailing bytes that do not form a complete valid line are a
//!   **truncated or corrupt tail**: dropped and reported, never a panic
//!   ([`Recovery::tail`]). [`Journal::resume`] truncates the file back to
//!   the last valid record before appending.
//! * An invalid line *followed by more data* is **middle corruption**
//!   (e.g. a checksum flip from bit rot): recovery refuses with a clear
//!   [`JournalError::CorruptMiddle`] rather than silently skipping data.
//! * Duplicate `(cell, instance)` keys resolve last-writer-wins, counted
//!   in [`Recovery::duplicates`] so callers can warn.
//!
//! ## What a record stores
//!
//! A `completed` record persists everything in a
//! [`TestResult`](crate::runner::TestResult) *except* the analysis and
//! the white-box report: the analysis is recomputed on recovery from the
//! persisted trace with [`crate::runner::checker_config_for`] (pure and
//! deterministic, so resumption is byte-identical), and the white-box
//! probe is a single-test debugging tool that journaled campaigns don't
//! enable. A `crashed` record stores the panic message of a quarantined
//! worker so `conprobe journal inspect` can report it.

use crate::coordinator::AgentHealth;
use crate::runner::{checker_config_for, FaultLedger, TestConfig, TestResult};
use conprobe_core::{analyze, TestTrace};
use conprobe_json::{member, FromJson, JsonError, JsonValue, ToJson};
use conprobe_services::fault_driver::ExecutedAction;
use conprobe_services::ServiceKind;
use conprobe_sim::net::Region;
use conprobe_sim::{BrownoutMode, NodeId, ServiceActionKind, SimDuration, SimTime};
use conprobe_store::PostId;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

// Record framing (`cpj1` magic, length prefix, FNV-1a checksum) lives in
// `conprobe_json::frame` so the quorum state-transfer stream and this
// journal share one encoder/decoder.
use conprobe_json::frame;

// ---------------------------------------------------------------------------
// Record model
// ---------------------------------------------------------------------------

/// Identifies one test instance within a journal: which campaign cell it
/// belongs to, its instance index, and the seed it ran with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalKey {
    /// Stable cell identifier (e.g. `"blogger/test1"`,
    /// `"chaos/gplus/test2/seed7"`). Distinguishes cells sharing one
    /// journal file.
    pub cell: String,
    /// Instance index within the cell (for chaos journals, the level).
    pub instance: u32,
    /// The per-instance seed the record was produced with. Resume
    /// validates this against the freshly derived seed and re-runs the
    /// instance on mismatch, so a journal from a different master seed
    /// can never be spliced into the wrong study.
    pub seed: u64,
}

/// A recovered record's body. Completed results stay as raw JSON until a
/// [`TestConfig`] is available to rebuild the [`TestResult`] (the
/// analysis is recomputed, see [`result_from_json`]).
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveredEntry {
    /// The instance finished; payload is the serialized result object.
    Completed(JsonValue),
    /// The instance's worker panicked and was quarantined.
    Crashed {
        /// The panic message captured by the campaign worker.
        panic: String,
    },
}

/// One recovered journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredRecord {
    /// The (cell, instance, seed) key.
    pub key: JournalKey,
    /// Completed payload or crash report.
    pub entry: RecoveredEntry,
}

/// Diagnostic for a dropped journal tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailLoss {
    /// Byte offset where the damaged tail starts.
    pub offset: u64,
    /// Number of bytes dropped.
    pub bytes: u64,
    /// Why the tail was rejected (truncation, checksum mismatch, …).
    pub reason: String,
}

impl fmt::Display for TailLoss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dropped {} tail byte(s) at offset {}: {}", self.bytes, self.offset, self.reason)
    }
}

/// The outcome of [`Journal::recover`].
#[derive(Debug, Clone)]
pub struct Recovery {
    /// Valid records after last-writer-wins dedup, in file order of each
    /// key's final writer.
    pub records: Vec<RecoveredRecord>,
    /// Raw valid record count, including superseded duplicates.
    pub total_records: usize,
    /// Records superseded by a later record with the same key.
    pub duplicates: usize,
    /// Damaged tail, if the file ended mid-record.
    pub tail: Option<TailLoss>,
    /// Byte length of the valid prefix ([`Journal::resume`] truncates the
    /// file to this length before appending).
    pub valid_len: u64,
}

impl Recovery {
    /// Completed records for one cell: instance index → (seed, payload).
    pub fn completed_for(&self, cell: &str) -> BTreeMap<u32, (u64, &JsonValue)> {
        self.records
            .iter()
            .filter(|r| r.key.cell == cell)
            .filter_map(|r| match &r.entry {
                RecoveredEntry::Completed(v) => Some((r.key.instance, (r.key.seed, v))),
                RecoveredEntry::Crashed { .. } => None,
            })
            .collect()
    }

    /// Crashed records (across all cells), for reporting.
    pub fn crashed(&self) -> Vec<(&JournalKey, &str)> {
        self.records
            .iter()
            .filter_map(|r| match &r.entry {
                RecoveredEntry::Crashed { panic } => Some((&r.key, panic.as_str())),
                RecoveredEntry::Completed(_) => None,
            })
            .collect()
    }
}

/// Why a journal could not be recovered.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// A record *before* the tail is damaged — the journal is not a
    /// crash artifact but corrupted storage, and silently skipping the
    /// record would splice a hole into the study. Recovery refuses.
    CorruptMiddle {
        /// Zero-based index of the damaged record.
        record: usize,
        /// Byte offset of the damaged line.
        offset: u64,
        /// What failed (frame, checksum, JSON, schema).
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::CorruptMiddle { record, offset, reason } => write!(
                f,
                "journal corrupt at record {record} (byte offset {offset}): {reason}; \
                 refusing to resume from a journal with damage before the tail"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// The journal file
// ---------------------------------------------------------------------------

/// An append-only, fsync'd campaign journal.
///
/// Appends are thread-safe (campaign workers journal concurrently); each
/// record is written with a single `write_all` and synced to disk before
/// the append returns, so a completed test can never be lost to a later
/// crash.
#[derive(Debug)]
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
}

impl Journal {
    /// Creates (or truncates) a fresh journal at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).write(true).truncate(true).open(&path)?;
        Ok(Journal { file: Mutex::new(file), path })
    }

    /// Recovers `path` (read-only): parses every record, tolerating a
    /// truncated or checksum-corrupt tail.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the file cannot be read;
    /// [`JournalError::CorruptMiddle`] if a record before the tail is
    /// damaged.
    pub fn recover(path: impl AsRef<Path>) -> Result<Recovery, JournalError> {
        let mut bytes = Vec::new();
        File::open(path.as_ref())?.read_to_end(&mut bytes)?;
        recover_bytes(&bytes)
    }

    /// Recovers `path` and reopens it for appending: the damaged tail (if
    /// any) is truncated away so subsequent appends extend the valid
    /// prefix.
    pub fn resume(path: impl AsRef<Path>) -> Result<(Journal, Recovery), JournalError> {
        let path = path.as_ref().to_path_buf();
        let recovery = Journal::recover(&path)?;
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(recovery.valid_len)?;
        file.sync_data()?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok((Journal { file: Mutex::new(file), path }, recovery))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a completed-test record.
    pub fn append_completed(
        &self,
        cell: &str,
        instance: u32,
        seed: u64,
        result: &TestResult,
    ) -> std::io::Result<()> {
        self.append_payload(&completed_record_json(cell, instance, seed, result))
    }

    /// Appends a quarantined-crash record.
    pub fn append_crashed(
        &self,
        cell: &str,
        instance: u32,
        seed: u64,
        panic_msg: &str,
    ) -> std::io::Result<()> {
        self.append_payload(&crashed_record_json(cell, instance, seed, panic_msg))
    }

    /// Frames, writes, and fsyncs one payload verbatim.
    ///
    /// This is the ingestion path for distributed campaigns: a dispatch
    /// coordinator appends record payloads produced by remote workers
    /// (via [`completed_record_json`] / [`crashed_record_json`]) without
    /// re-serializing, so the merged journal is byte-compatible with one
    /// a single process would have written. Validate foreign payloads
    /// with [`parse_record_payload`] first.
    pub fn append_payload(&self, payload: &str) -> std::io::Result<()> {
        let line = frame::encode_record(payload);
        let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
        file.write_all(line.as_bytes())?;
        file.sync_data()?;
        maybe_abort_for_drill();
        Ok(())
    }
}

/// Kill drill: with `CONPROBE_ABORT_AFTER_JOURNALED=N` in the
/// environment, the process aborts (no unwinding, no destructors — the
/// moral equivalent of SIGKILL) after the N-th successful journal append.
/// CI's kill-and-resume smoke job uses this to prove that a campaign
/// murdered mid-run resumes to byte-identical study output.
fn maybe_abort_for_drill() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;
    static LIMIT: OnceLock<Option<u64>> = OnceLock::new();
    let limit = *LIMIT.get_or_init(|| {
        std::env::var("CONPROBE_ABORT_AFTER_JOURNALED").ok().and_then(|s| s.parse().ok())
    });
    if let Some(limit) = limit {
        static APPENDS: AtomicU64 = AtomicU64::new(0);
        if APPENDS.fetch_add(1, Ordering::Relaxed) + 1 >= limit {
            eprintln!("journal: CONPROBE_ABORT_AFTER_JOURNALED={limit} reached; aborting");
            std::process::abort();
        }
    }
}

/// The journal payload (compact JSON) for a completed-test record — what
/// [`Journal::append_completed`] writes, exposed so a dispatch worker can
/// serialize a result once and stream the exact journal bytes to its
/// coordinator.
pub fn completed_record_json(cell: &str, instance: u32, seed: u64, result: &TestResult) -> String {
    record_json(cell, instance, seed, "completed", |members| {
        members.push(("result".into(), result_to_json(result)));
    })
}

/// The journal payload (compact JSON) for a quarantined-crash record —
/// what [`Journal::append_crashed`] writes; see [`completed_record_json`].
pub fn crashed_record_json(cell: &str, instance: u32, seed: u64, panic_msg: &str) -> String {
    record_json(cell, instance, seed, "crashed", |members| {
        members.push(("panic".into(), JsonValue::Str(panic_msg.to_string())));
    })
}

fn record_json(
    cell: &str,
    instance: u32,
    seed: u64,
    status: &str,
    extend: impl FnOnce(&mut Vec<(String, JsonValue)>),
) -> String {
    let mut members = vec![
        ("cell".into(), JsonValue::Str(cell.to_string())),
        ("instance".into(), instance.to_json()),
        ("seed".into(), seed.to_json()),
        ("status".into(), JsonValue::Str(status.to_string())),
    ];
    extend(&mut members);
    JsonValue::Object(members).to_compact()
}

/// Parses the journal byte stream (exposed for byte-surgery tests).
fn recover_bytes(bytes: &[u8]) -> Result<Recovery, JournalError> {
    let mut raw: Vec<RecoveredRecord> = Vec::new();
    let mut tail = None;
    let mut valid_len = 0u64;
    let mut offset = 0usize;
    let mut index = 0usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        let line_end = rest.iter().position(|&b| b == b'\n');
        let (line, consumed, complete) = match line_end {
            Some(nl) => (&rest[..nl], nl + 1, true),
            None => (rest, rest.len(), false),
        };
        let verdict = if complete {
            parse_line(line)
        } else {
            Err("record truncated mid-line (no trailing newline)".to_string())
        };
        match verdict {
            Ok(record) => {
                raw.push(record);
                valid_len = (offset + consumed) as u64;
                index += 1;
            }
            Err(reason) => {
                let last = offset + consumed >= bytes.len();
                if last {
                    tail = Some(TailLoss {
                        offset: offset as u64,
                        bytes: (bytes.len() - offset) as u64,
                        reason,
                    });
                    break;
                }
                return Err(JournalError::CorruptMiddle {
                    record: index,
                    offset: offset as u64,
                    reason,
                });
            }
        }
        offset += consumed;
    }
    // Last-writer-wins dedup on (cell, instance).
    let total_records = raw.len();
    let mut records: Vec<RecoveredRecord> = Vec::with_capacity(raw.len());
    let mut duplicates = 0usize;
    for record in raw {
        if let Some(prev) = records
            .iter_mut()
            .find(|r| r.key.cell == record.key.cell && r.key.instance == record.key.instance)
        {
            *prev = record;
            duplicates += 1;
        } else {
            records.push(record);
        }
    }
    Ok(Recovery { records, total_records, duplicates, tail, valid_len })
}

/// Validates one complete line: frame, checksum, JSON, schema.
fn parse_line(line: &[u8]) -> Result<RecoveredRecord, String> {
    let text = std::str::from_utf8(line).map_err(|_| "record is not UTF-8".to_string())?;
    let payload = frame::decode_record(text).map_err(|e| e.to_string())?;
    parse_record_payload(payload)
}

/// Validates one unframed record payload (JSON + schema), returning its
/// key and entry. The dispatch coordinator runs every worker-pushed
/// payload through this before journaling it, so a buggy or hostile
/// worker cannot splice malformed records into the study.
///
/// # Errors
///
/// A human-readable reason when the payload is not valid record JSON.
pub fn parse_record_payload(payload: &str) -> Result<RecoveredRecord, String> {
    let doc = conprobe_json::parse(payload).map_err(|e| format!("payload JSON: {e}"))?;
    let key = JournalKey {
        cell: String::from_json(member(&doc, "cell").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?,
        instance: u32::from_json(member(&doc, "instance").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?,
        seed: u64::from_json(member(&doc, "seed").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?,
    };
    let status = doc.get("status").and_then(JsonValue::as_str).unwrap_or("");
    let entry = match status {
        "completed" => {
            RecoveredEntry::Completed(member(&doc, "result").map_err(|e| e.to_string())?.clone())
        }
        "crashed" => RecoveredEntry::Crashed {
            panic: doc.get("panic").and_then(JsonValue::as_str).unwrap_or("").to_string(),
        },
        other => return Err(format!("unknown record status {other:?}")),
    };
    Ok(RecoveredRecord { key, entry })
}

// ---------------------------------------------------------------------------
// TestResult (de)serialization
// ---------------------------------------------------------------------------

/// Stable CLI-style token for a service (`ServiceKind::name` contains
/// spaces and unicode; records use the same tokens the CLI parses).
pub fn service_token(service: ServiceKind) -> &'static str {
    match service {
        ServiceKind::Blogger => "blogger",
        ServiceKind::GooglePlus => "gplus",
        ServiceKind::FacebookFeed => "fbfeed",
        ServiceKind::FacebookGroup => "fbgroup",
        ServiceKind::Quorum => "quorum",
        ServiceKind::Pbft => "pbft",
    }
}

fn service_from_token(s: &str) -> Result<ServiceKind, JsonError> {
    match s {
        "blogger" => Ok(ServiceKind::Blogger),
        "gplus" => Ok(ServiceKind::GooglePlus),
        "fbfeed" => Ok(ServiceKind::FacebookFeed),
        "fbgroup" => Ok(ServiceKind::FacebookGroup),
        "quorum" => Ok(ServiceKind::Quorum),
        "pbft" => Ok(ServiceKind::Pbft),
        other => Err(JsonError::schema(format!("unknown service token {other:?}"))),
    }
}

fn region_to_json(region: Region) -> JsonValue {
    JsonValue::Str(region.short().into_owned())
}

fn region_from_json(v: &JsonValue) -> Result<Region, JsonError> {
    let s = v.as_str().ok_or_else(|| JsonError::schema("expected region string"))?;
    match s {
        "OR" => Ok(Region::Oregon),
        "JP" => Ok(Region::Tokyo),
        "IR" => Ok(Region::Ireland),
        "VA" => Ok(Region::Virginia),
        other => match other.strip_prefix("DC").and_then(|n| n.parse().ok()) {
            Some(n) => Ok(Region::Datacenter(n)),
            None => Err(JsonError::schema(format!("unknown region {other:?}"))),
        },
    }
}

fn action_kind_to_json(kind: ServiceActionKind) -> JsonValue {
    JsonValue::Str(match kind {
        ServiceActionKind::Crash => "crash".to_string(),
        ServiceActionKind::Recover => "recover".to_string(),
        ServiceActionKind::BrownoutEnd => "brownout_end".to_string(),
        ServiceActionKind::BrownoutStart(BrownoutMode::ThrottleStorm) => {
            "brownout_throttle".to_string()
        }
        ServiceActionKind::BrownoutStart(BrownoutMode::Delay(d)) => {
            format!("brownout_delay:{}", d.as_nanos())
        }
    })
}

fn action_kind_from_json(v: &JsonValue) -> Result<ServiceActionKind, JsonError> {
    let s = v.as_str().ok_or_else(|| JsonError::schema("expected action string"))?;
    match s {
        "crash" => Ok(ServiceActionKind::Crash),
        "recover" => Ok(ServiceActionKind::Recover),
        "brownout_end" => Ok(ServiceActionKind::BrownoutEnd),
        "brownout_throttle" => Ok(ServiceActionKind::BrownoutStart(BrownoutMode::ThrottleStorm)),
        other => match other.strip_prefix("brownout_delay:").and_then(|n| n.parse().ok()) {
            Some(nanos) => Ok(ServiceActionKind::BrownoutStart(BrownoutMode::Delay(
                SimDuration::from_nanos(nanos),
            ))),
            None => Err(JsonError::schema(format!("unknown service action {other:?}"))),
        },
    }
}

fn ledger_to_json(ledger: &FaultLedger) -> JsonValue {
    JsonValue::Object(vec![
        (
            "net".into(),
            JsonValue::Object(vec![
                ("blocked".into(), ledger.net.blocked.to_json()),
                ("dropped".into(), ledger.net.dropped.to_json()),
                ("delayed".into(), ledger.net.delayed.to_json()),
            ]),
        ),
        (
            "actions".into(),
            JsonValue::Array(
                ledger
                    .actions
                    .iter()
                    .map(|a| {
                        JsonValue::Object(vec![
                            ("at_nanos".into(), a.at.as_nanos().to_json()),
                            ("target".into(), a.target.to_json()),
                            ("action".into(), action_kind_to_json(a.action)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("skipped_actions".into(), ledger.skipped_actions.to_json()),
        (
            "agent_rpc".into(),
            JsonValue::Array(
                ledger
                    .agent_rpc
                    .iter()
                    .map(|s| {
                        JsonValue::Object(vec![
                            ("retransmits".into(), s.retransmits.to_json()),
                            ("abandoned".into(), s.abandoned.to_json()),
                            ("throttled".into(), s.throttled.to_json()),
                            ("max_throttle_streak".into(), s.max_throttle_streak.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn ledger_from_json(v: &JsonValue) -> Result<FaultLedger, JsonError> {
    let net = member(v, "net")?;
    let mut ledger = FaultLedger {
        net: conprobe_sim::FaultNetStats {
            blocked: u64::from_json(member(net, "blocked")?)?,
            dropped: u64::from_json(member(net, "dropped")?)?,
            delayed: u64::from_json(member(net, "delayed")?)?,
        },
        ..FaultLedger::default()
    };
    for a in member(v, "actions")?
        .as_array()
        .ok_or_else(|| JsonError::schema("actions must be an array"))?
    {
        ledger.actions.push(ExecutedAction {
            at: SimTime::from_nanos(u64::from_json(member(a, "at_nanos")?)?),
            target: usize::from_json(member(a, "target")?)?,
            action: action_kind_from_json(member(a, "action")?)?,
        });
    }
    ledger.skipped_actions = usize::from_json(member(v, "skipped_actions")?)?;
    for s in member(v, "agent_rpc")?
        .as_array()
        .ok_or_else(|| JsonError::schema("agent_rpc must be an array"))?
    {
        ledger.agent_rpc.push(crate::agent::RpcStats {
            retransmits: u64::from_json(member(s, "retransmits")?)?,
            abandoned: u64::from_json(member(s, "abandoned")?)?,
            throttled: u64::from_json(member(s, "throttled")?)?,
            max_throttle_streak: u32::from_json(member(s, "max_throttle_streak")?)?,
        });
    }
    Ok(ledger)
}

fn health_to_json(health: &AgentHealth) -> JsonValue {
    JsonValue::Object(vec![
        ("agent_index".into(), health.agent_index.to_json()),
        ("heartbeats".into(), health.heartbeats.to_json()),
        ("quarantined".into(), health.quarantined.to_json()),
        ("log_collected".into(), health.log_collected.to_json()),
    ])
}

fn health_from_json(v: &JsonValue) -> Result<AgentHealth, JsonError> {
    Ok(AgentHealth {
        agent_index: u32::from_json(member(v, "agent_index")?)?,
        heartbeats: u64::from_json(member(v, "heartbeats")?)?,
        quarantined: bool::from_json(member(v, "quarantined")?)?,
        log_collected: bool::from_json(member(v, "log_collected")?)?,
    })
}

/// Serializes a [`TestResult`] as a journal `result` object. The analysis
/// and the white-box report are intentionally omitted (see the module
/// docs).
pub fn result_to_json(result: &TestResult) -> JsonValue {
    JsonValue::Object(vec![
        ("trace".into(), ToJson::to_json(&result.trace)),
        ("completed".into(), result.completed.to_json()),
        ("reads_per_agent".into(), result.reads_per_agent.to_json()),
        ("writes_total".into(), result.writes_total.to_json()),
        ("duration_secs".into(), result.duration_secs.to_json()),
        ("partitioned".into(), result.partitioned.to_json()),
        ("clock_error_nanos".into(), result.clock_error_nanos.to_json()),
        ("clock_uncertainty_nanos".into(), result.clock_uncertainty_nanos.to_json()),
        (
            "agent_regions".into(),
            JsonValue::Array(result.agent_regions.iter().map(|r| region_to_json(*r)).collect()),
        ),
        ("fault_ledger".into(), ledger_to_json(&result.fault_ledger)),
        (
            "agent_health".into(),
            JsonValue::Array(result.agent_health.iter().map(health_to_json).collect()),
        ),
        ("salvaged".into(), result.salvaged.to_json()),
        ("seed".into(), result.seed.to_json()),
        ("sim_events".into(), result.sim_events.to_json()),
        ("service".into(), JsonValue::Str(service_token(result.service).to_string())),
        (
            "agent_entries".into(),
            JsonValue::Array(result.agent_entries.iter().map(|n| n.0.to_json()).collect()),
        ),
    ])
}

/// Rebuilds a [`TestResult`] from a journal `result` object, recomputing
/// the analysis with the checker configuration `config` implies — the
/// determinism-of-resume guarantee rests on `analyze` being a pure
/// function of `(trace, checker config)`.
///
/// # Errors
///
/// Returns a schema [`JsonError`] when the payload has the wrong shape.
pub fn result_from_json(config: &TestConfig, v: &JsonValue) -> Result<TestResult, JsonError> {
    let trace: TestTrace<PostId> = FromJson::from_json(member(v, "trace")?)?;
    let analysis = analyze(&trace, &checker_config_for(config));
    let regions = member(v, "agent_regions")?
        .as_array()
        .ok_or_else(|| JsonError::schema("agent_regions must be an array"))?
        .iter()
        .map(region_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let health = member(v, "agent_health")?
        .as_array()
        .ok_or_else(|| JsonError::schema("agent_health must be an array"))?
        .iter()
        .map(health_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let entries = member(v, "agent_entries")?
        .as_array()
        .ok_or_else(|| JsonError::schema("agent_entries must be an array"))?
        .iter()
        .map(|n| usize::from_json(n).map(NodeId))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(TestResult {
        analysis,
        completed: bool::from_json(member(v, "completed")?)?,
        reads_per_agent: Vec::from_json(member(v, "reads_per_agent")?)?,
        writes_total: u32::from_json(member(v, "writes_total")?)?,
        duration_secs: f64::from_json(member(v, "duration_secs")?)?,
        partitioned: bool::from_json(member(v, "partitioned")?)?,
        clock_error_nanos: Vec::from_json(member(v, "clock_error_nanos")?)?,
        clock_uncertainty_nanos: Vec::from_json(member(v, "clock_uncertainty_nanos")?)?,
        agent_regions: regions,
        whitebox: None,
        fault_ledger: ledger_from_json(member(v, "fault_ledger")?)?,
        agent_health: health,
        salvaged: bool::from_json(member(v, "salvaged")?)?,
        seed: u64::from_json(member(v, "seed")?)?,
        sim_events: u64::from_json(member(v, "sim_events")?)?,
        service: service_from_token(
            member(v, "service")?.as_str().ok_or_else(|| JsonError::schema("service string"))?,
        )?,
        agent_entries: entries,
        trace,
    })
}

/// Stable cell identifier for a (service, test-kind) campaign cell.
pub fn cell_id(service: ServiceKind, kind: crate::proto::TestKind) -> String {
    let kind = match kind {
        crate::proto::TestKind::Test1 => "test1",
        crate::proto::TestKind::Test2 => "test2",
    };
    format!("{}/{kind}", service_token(service))
}

/// Cell identifier for a live-path chaos sweep (`chaos --wire`): its own
/// namespace, so an interposer-arm journal never splices into (or out
/// of) a simulated sweep's `chaos/…` cell or a plain probe's `wire/…`
/// cell with the same service and test kind.
pub fn wire_chaos_cell_id(service: ServiceKind, kind: crate::proto::TestKind) -> String {
    format!("chaos-wire/{}", cell_id(service, kind))
}

// ---------------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------------

/// Per-cell completion summary for `conprobe journal inspect`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSummary {
    /// Cell identifier.
    pub cell: String,
    /// Completed instances recorded.
    pub completed: usize,
    /// Quarantined crashes recorded.
    pub crashed: usize,
    /// Highest instance index seen (completion is dense 0..=max when no
    /// instance is missing).
    pub max_instance: u32,
}

/// Groups a recovery into per-cell summaries (sorted by cell id).
pub fn summarize(recovery: &Recovery) -> Vec<CellSummary> {
    let mut by_cell: BTreeMap<&str, CellSummary> = BTreeMap::new();
    for record in &recovery.records {
        let entry = by_cell.entry(&record.key.cell).or_insert_with(|| CellSummary {
            cell: record.key.cell.clone(),
            completed: 0,
            crashed: 0,
            max_instance: 0,
        });
        match record.entry {
            RecoveredEntry::Completed(_) => entry.completed += 1,
            RecoveredEntry::Crashed { .. } => entry.crashed += 1,
        }
        entry.max_instance = entry.max_instance.max(record.key.instance);
    }
    by_cell.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::TestKind;
    use crate::runner::run_one_test;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SERIAL: AtomicU64 = AtomicU64::new(0);
        let n = SERIAL.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir()
            .join(format!("conprobe-journal-{tag}-{}-{n}.jsonl", std::process::id()))
    }

    #[test]
    fn cell_namespaces_never_collide_across_run_modes() {
        // A journal shared by sim sweeps, live probes and wire chaos
        // sweeps keys each mode's records into a distinct cell.
        let sim = cell_id(ServiceKind::Blogger, TestKind::Test2);
        let wire_chaos = wire_chaos_cell_id(ServiceKind::Blogger, TestKind::Test2);
        assert_eq!(sim, "blogger/test2");
        assert_eq!(wire_chaos, "chaos-wire/blogger/test2");
        assert_ne!(format!("chaos/{sim}"), wire_chaos);
        assert_ne!(format!("wire/{sim}"), wire_chaos);
    }

    #[test]
    fn create_under_a_file_parent_is_a_typed_error_not_a_panic() {
        let parent = temp_path("not-a-dir");
        std::fs::write(&parent, b"a file, not a directory").unwrap();
        let err = Journal::create(parent.join("journal.jsonl"))
            .expect_err("a file cannot be a parent directory");
        // ENOTDIR surfaces as a plain io::Error for the caller to report.
        assert_ne!(err.kind(), std::io::ErrorKind::Other, "{err}");
        std::fs::remove_file(&parent).ok();
    }

    #[test]
    fn append_io_error_surfaces_instead_of_panicking() {
        // `/dev/full` accepts the open but fails every write with ENOSPC
        // — the kernel's built-in fault injector for exactly this path.
        let full = Path::new("/dev/full");
        if !full.exists() {
            return; // platform without /dev/full; covered on CI (Linux)
        }
        let journal = Journal::create(full).expect("character devices open for writing");
        let err = journal
            .append_crashed("cell/test1", 0, 7, "boom")
            .expect_err("a full device must fail the append");
        assert_eq!(err.raw_os_error(), Some(28), "expected ENOSPC, got {err}");
        // The journal object stays usable for error reporting (no
        // poisoned lock, no unwinding inside append_payload).
        let again = journal.append_crashed("cell/test1", 1, 7, "boom");
        assert!(again.is_err());
    }

    #[test]
    fn completed_record_round_trips_with_recomputed_analysis() {
        let config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test2);
        let result = run_one_test(&config, 11);
        let payload = result_to_json(&result);
        let back = result_from_json(&config, &payload).expect("round trip");
        assert_eq!(back.trace, result.trace);
        assert_eq!(back.completed, result.completed);
        assert_eq!(back.reads_per_agent, result.reads_per_agent);
        assert_eq!(back.duration_secs, result.duration_secs);
        assert_eq!(back.clock_error_nanos, result.clock_error_nanos);
        assert_eq!(back.agent_regions, result.agent_regions);
        assert_eq!(back.agent_entries, result.agent_entries);
        assert_eq!(back.seed, result.seed);
        assert_eq!(back.sim_events, result.sim_events);
        assert_eq!(back.service, result.service);
        // The recomputed analysis is byte-identical at the observation
        // level (pure function of trace + config).
        assert_eq!(back.analysis.observations, result.analysis.observations);
        assert_eq!(back.analysis.content_windows, result.analysis.content_windows);
        assert_eq!(back.analysis.order_windows, result.analysis.order_windows);
        // And a second serialization is a fixpoint.
        assert_eq!(result_to_json(&back).to_compact(), payload.to_compact());
    }

    #[test]
    fn ledger_and_actions_round_trip() {
        use conprobe_sim::FaultNetStats;
        let ledger = FaultLedger {
            net: FaultNetStats { blocked: 3, dropped: 1, delayed: 7 },
            actions: vec![
                ExecutedAction {
                    at: SimTime::from_nanos(5),
                    target: 1,
                    action: ServiceActionKind::Crash,
                },
                ExecutedAction {
                    at: SimTime::from_nanos(9),
                    target: 0,
                    action: ServiceActionKind::BrownoutStart(BrownoutMode::Delay(
                        SimDuration::from_millis(20),
                    )),
                },
                ExecutedAction {
                    at: SimTime::from_nanos(11),
                    target: 0,
                    action: ServiceActionKind::BrownoutEnd,
                },
            ],
            skipped_actions: 2,
            agent_rpc: vec![crate::agent::RpcStats {
                retransmits: 4,
                abandoned: 1,
                throttled: 9,
                max_throttle_streak: 3,
            }],
        };
        let back = ledger_from_json(&ledger_to_json(&ledger)).unwrap();
        assert_eq!(back.net, ledger.net);
        assert_eq!(back.actions, ledger.actions);
        assert_eq!(back.skipped_actions, ledger.skipped_actions);
        assert_eq!(back.agent_rpc, ledger.agent_rpc);
    }

    #[test]
    fn empty_journal_recovers_to_nothing() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let r = Journal::recover(&path).unwrap();
        assert!(r.records.is_empty());
        assert_eq!(r.total_records, 0);
        assert!(r.tail.is_none());
        assert_eq!(r.valid_len, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_is_an_io_error_not_a_panic() {
        let err = Journal::recover(temp_path("missing")).unwrap_err();
        assert!(matches!(err, JournalError::Io(_)), "{err}");
    }

    #[test]
    fn tail_truncated_at_every_byte_boundary_recovers_the_prefix() {
        let path = temp_path("trunc");
        let journal = Journal::create(&path).unwrap();
        journal.append_crashed("cell/a", 0, 100, "first").unwrap();
        journal.append_crashed("cell/a", 1, 101, "second").unwrap();
        let full = std::fs::read(&path).unwrap();
        let clean = recover_bytes(&full).unwrap();
        assert_eq!(clean.records.len(), 2);
        assert!(clean.tail.is_none());
        let first_len = clean.records_boundary(&full);
        // Cut the file anywhere inside the second record (from losing
        // just the newline to losing all but one byte).
        for cut in first_len + 1..full.len() {
            let r = recover_bytes(&full[..cut])
                .unwrap_or_else(|e| panic!("cut at {cut}/{} must recover, got {e}", full.len()));
            assert_eq!(r.records.len(), 1, "cut at {cut}");
            assert_eq!(r.records[0].key.instance, 0);
            assert_eq!(r.valid_len, first_len as u64, "cut at {cut}");
            let tail = r.tail.expect("truncation must be diagnosed");
            assert_eq!(tail.offset, first_len as u64);
            assert_eq!(tail.bytes as usize, cut - first_len);
        }
        std::fs::remove_file(&path).ok();
    }

    impl Recovery {
        /// Test helper: byte offset after the first record line.
        fn records_boundary(&self, bytes: &[u8]) -> usize {
            bytes.iter().position(|&b| b == b'\n').unwrap() + 1
        }
    }

    #[test]
    fn checksum_flip_in_middle_record_is_rejected_with_clear_error() {
        let path = temp_path("flip");
        let journal = Journal::create(&path).unwrap();
        journal.append_crashed("cell/a", 0, 100, "first").unwrap();
        journal.append_crashed("cell/a", 1, 101, "second").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte inside the *first* record.
        let payload_pos = bytes.iter().position(|&b| b == b'{').unwrap();
        bytes[payload_pos + 10] ^= 0x01;
        let err = recover_bytes(&bytes).unwrap_err();
        match err {
            JournalError::CorruptMiddle { record, offset, ref reason } => {
                assert_eq!(record, 0);
                assert_eq!(offset, 0);
                assert!(reason.contains("checksum") || reason.contains("JSON"), "{reason}");
            }
            other => panic!("expected CorruptMiddle, got {other}"),
        }
        assert!(err.to_string().contains("refusing to resume"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_flip_in_tail_record_is_dropped_with_report() {
        let path = temp_path("tailflip");
        let journal = Journal::create(&path).unwrap();
        journal.append_crashed("cell/a", 0, 100, "first").unwrap();
        journal.append_crashed("cell/a", 1, 101, "second").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3; // inside the final record's payload
        bytes[last] ^= 0x01;
        let r = recover_bytes(&bytes).unwrap();
        assert_eq!(r.records.len(), 1);
        let tail = r.tail.expect("corrupt tail must be diagnosed");
        assert!(
            tail.reason.contains("checksum") || tail.reason.contains("JSON"),
            "{}",
            tail.reason
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_keys_resolve_last_writer_wins() {
        let path = temp_path("dup");
        let journal = Journal::create(&path).unwrap();
        journal.append_crashed("cell/a", 0, 100, "first attempt").unwrap();
        journal.append_crashed("cell/b", 0, 100, "other cell").unwrap();
        journal.append_crashed("cell/a", 0, 100, "second attempt").unwrap();
        let r = Journal::recover(&path).unwrap();
        assert_eq!(r.total_records, 3);
        assert_eq!(r.duplicates, 1);
        assert_eq!(r.records.len(), 2);
        let winner =
            r.records.iter().find(|rec| rec.key.cell == "cell/a").expect("cell/a survives");
        assert_eq!(winner.entry, RecoveredEntry::Crashed { panic: "second attempt".into() });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_truncates_damaged_tail_and_appends_cleanly() {
        let path = temp_path("resume");
        let journal = Journal::create(&path).unwrap();
        journal.append_crashed("cell/a", 0, 100, "first").unwrap();
        journal.append_crashed("cell/a", 1, 101, "second").unwrap();
        drop(journal);
        // Simulate a crash mid-write: lop 7 bytes off the tail.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let (journal, recovery) = Journal::resume(&path).unwrap();
        assert_eq!(recovery.records.len(), 1);
        assert!(recovery.tail.is_some());
        journal.append_crashed("cell/a", 1, 101, "rewritten").unwrap();
        drop(journal);
        let r = Journal::recover(&path).unwrap();
        assert!(r.tail.is_none(), "resume must have truncated the damage");
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.records[1].entry, RecoveredEntry::Crashed { panic: "rewritten".into() });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summarize_groups_by_cell() {
        let path = temp_path("summary");
        let journal = Journal::create(&path).unwrap();
        journal.append_crashed("blogger/test1", 3, 1, "boom").unwrap();
        journal.append_crashed("gplus/test2", 0, 2, "bang").unwrap();
        journal.append_crashed("blogger/test1", 1, 3, "pow").unwrap();
        let r = Journal::recover(&path).unwrap();
        let cells = summarize(&r);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].cell, "blogger/test1");
        assert_eq!(cells[0].crashed, 2);
        assert_eq!(cells[0].max_instance, 3);
        assert_eq!(cells[1].cell, "gplus/test2");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn region_and_action_tokens_round_trip() {
        for region in [
            Region::Oregon,
            Region::Tokyo,
            Region::Ireland,
            Region::Virginia,
            Region::Datacenter(4),
        ] {
            assert_eq!(region_from_json(&region_to_json(region)).unwrap(), region);
        }
        assert!(region_from_json(&JsonValue::Str("XX".into())).is_err());
        for service in ServiceKind::ALL {
            assert_eq!(service_from_token(service_token(service)).unwrap(), service);
        }
    }
}
