//! # conprobe-harness — the measurement methodology of §IV–V
//!
//! This crate implements the paper's measurement machinery end to end:
//!
//! * [`clocksync`] — the custom Cristian-style clock synchronization: the
//!   coordinator probes each agent's local clock over the (simulated) WAN,
//!   estimates per-agent deltas by assuming symmetric one-way delays, and
//!   carries an uncertainty of half the RTT. NTP is "disabled" by
//!   construction: agents' clocks drift freely.
//! * [`agent`] — the deployed agents (Oregon, Tokyo, Ireland). Each runs
//!   the scripted behaviour of Test 1 (staggered write pairs triggered by
//!   observing the predecessor's last write, continuous background reads)
//!   or Test 2 (one synchronized write, adaptive-rate background reads),
//!   logging every operation with local invocation/response times.
//! * [`coordinator`] — the North Virginia coordinator: runs clock sync
//!   before each test, schedules a synchronized start, detects completion
//!   (Test 1: all agents saw M6; Test 2: all agents hit their read quota),
//!   collects the agents' logs, and maps them onto its own timeline using
//!   the estimated deltas.
//! * [`runner`] — builds one complete world (service + coordinator +
//!   agents), runs a single test instance, and analyzes the resulting trace
//!   with `conprobe-core`'s checkers.
//! * [`campaign`] — repeats tests with fresh worlds/seeds (optionally in
//!   parallel across OS threads), applying the configuration of the paper's
//!   Tables I and II, including the transient Tokyo partition episodes
//!   inferred for Facebook Group.
//! * [`stats`] / [`figures`] — aggregates campaign results into exactly the
//!   quantities the paper plots, and renders each table/figure as text and
//!   CSV.
//! * [`whitebox`] — the paper's future-work extension: probe replica state
//!   directly to separate true replica divergence from read-path artifacts.

//! ## Example: one paper test, end to end
//!
//! ```
//! use conprobe_harness::proto::TestKind;
//! use conprobe_harness::runner::{run_one_test, TestConfig};
//! use conprobe_services::ServiceKind;
//! use conprobe_core::AnomalyKind;
//!
//! let config = TestConfig::paper(ServiceKind::FacebookGroup, TestKind::Test1);
//! let result = run_one_test(&config, 7);
//! assert!(result.completed);
//! // The same-second reversal shows up as monotonic-writes violations…
//! assert!(result.analysis.has(AnomalyKind::MonotonicWrites));
//! // …and nothing else that FB Group doesn't exhibit.
//! assert!(!result.analysis.has(AnomalyKind::ReadYourWrites));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod campaign;
pub mod clocksync;
pub mod coordinator;
pub mod figures;
pub mod journal;
pub mod proto;
pub mod report;
pub mod runner;
pub mod schedule;
pub mod stats;
pub mod transport;
pub mod whitebox;

pub use agent::RpcStats;
pub use campaign::{run_campaign, run_campaign_with_progress, CampaignConfig, CampaignResult};
pub use coordinator::AgentHealth;
pub use journal::{Journal, JournalError, Recovery};
pub use proto::{HarnessMsg, Msg, TestKind};
pub use runner::{run_one_test, TestConfig, TestResult};
pub use transport::{EndpointError, ServiceEndpoint, SimRpc, Transport};
