//! Text renderers for every table and figure of the paper's evaluation.
//!
//! Each `render_*` function takes campaign results and prints the same
//! rows/series the paper reports, as an aligned text table (and, where
//! useful, CSV via the `*_csv` variants). The reproduction binary
//! (`conprobe-bench`, `repro`) calls these to regenerate the full
//! evaluation section.

use crate::campaign::CampaignResult;
use crate::stats::{
    self, largest_windows_secs, location_correlation, nonconvergence_fraction,
    observation_histogram, pair_label, pair_prevalence, prevalence, quantiles, BUCKET_LABELS,
    LOCATIONS, PAIRS,
};
use conprobe_core::window::WindowKind;
use conprobe_core::AnomalyKind;
use std::fmt::Write as _;

/// Quantiles at which CDFs are tabulated.
pub const CDF_QS: [f64; 7] = [0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 1.0];

fn header(title: &str) -> String {
    format!("\n== {title} ==\n")
}

/// Table I — configuration parameters for Test 1 (config + the measured
/// average reads per agent per test).
pub fn render_table1(cells: &[&CampaignResult]) -> String {
    let mut s = header("Table I: configuration parameters for Test 1");
    let _ = writeln!(
        s,
        "{:<34}{}",
        "",
        cells.iter().map(|c| format!("{:>10}", c.config.test.service.name())).collect::<String>()
    );
    let row = |label: &str, vals: Vec<String>| {
        format!("{:<34}{}\n", label, vals.iter().map(|v| format!("{v:>10}")).collect::<String>())
    };
    s += &row(
        "Period between reads",
        cells.iter().map(|c| format!("{}ms", c.config.test.read_period.as_millis())).collect(),
    );
    s += &row(
        "Reads per agent per test (avg)",
        cells.iter().map(|c| format!("{:.1}", c.mean_reads_per_agent())).collect(),
    );
    s += &row(
        "Time between successive tests",
        cells
            .iter()
            .map(|c| format!("{}min", c.config.between_tests.as_millis() / 60_000))
            .collect(),
    );
    s += &row(
        "Number of tests executed",
        cells.iter().map(|c| c.results.len().to_string()).collect(),
    );
    s
}

/// Table II — configuration parameters for Test 2.
pub fn render_table2(cells: &[&CampaignResult]) -> String {
    let mut s = header("Table II: configuration parameters for Test 2");
    let _ = writeln!(
        s,
        "{:<34}{}",
        "",
        cells.iter().map(|c| format!("{:>12}", c.config.test.service.name())).collect::<String>()
    );
    let row = |label: &str, vals: Vec<String>| {
        format!("{:<34}{}\n", label, vals.iter().map(|v| format!("{v:>12}")).collect::<String>())
    };
    s += &row(
        "Period between reads",
        cells
            .iter()
            .map(|c| {
                format!(
                    "{}ms({}X)+{}s",
                    c.config.test.read_period.as_millis(),
                    c.config.test.fast_reads,
                    c.config.test.slow_period.as_millis() / 1000
                )
            })
            .collect(),
    );
    s += &row(
        "Reads per agent per test",
        cells.iter().map(|c| c.config.test.reads_target.to_string()).collect(),
    );
    s += &row(
        "Time between successive tests",
        cells
            .iter()
            .map(|c| format!("{}min", c.config.between_tests.as_millis() / 60_000))
            .collect(),
    );
    s += &row(
        "Number of executed tests",
        cells.iter().map(|c| c.results.len().to_string()).collect(),
    );
    s
}

/// Figure 3 — percentage of tests with observations of each anomaly, per
/// service. Session guarantees come from the Test 1 campaign, divergence
/// anomalies from the Test 2 campaign (each anomaly from the test designed
/// to expose it).
pub fn render_fig3(cells: &[(&CampaignResult, &CampaignResult)]) -> String {
    let mut s = header("Figure 3: % of tests with observations of each anomaly");
    let _ = writeln!(
        s,
        "{:<24}{}",
        "anomaly",
        cells
            .iter()
            .map(|(t1, _)| format!("{:>10}", t1.config.test.service.name()))
            .collect::<String>()
    );
    for kind in AnomalyKind::ALL {
        let vals: String = cells
            .iter()
            .map(|(t1, t2)| {
                let results =
                    if AnomalyKind::SESSION.contains(&kind) { &t1.results } else { &t2.results };
                format!("{:>9.1}%", prevalence(results, kind))
            })
            .collect();
        let _ = writeln!(s, "{:<24}{}", kind.to_string(), vals);
    }
    s
}

/// Figures 4–7 — distribution of per-test observation counts of a session
/// anomaly (panels a/b: histogram per location) and the location
/// correlation (panel c/d), for each service where the anomaly occurs.
pub fn render_observation_figure(
    figure_no: u8,
    kind: AnomalyKind,
    cells: &[&CampaignResult],
) -> String {
    let mut s = header(&format!("Figure {figure_no}: distribution of {kind} anomalies per test"));
    for cell in cells {
        let p = prevalence(&cell.results, kind);
        if p == 0.0 {
            let _ = writeln!(s, "[{}] no {} anomalies observed", cell.config.test.service, kind);
            continue;
        }
        let _ = writeln!(
            s,
            "[{}] prevalence {:.1}% — observations per test per agent:",
            cell.config.test.service, p
        );
        let h = observation_histogram(&cell.results, kind);
        let _ = writeln!(
            s,
            "  {:<10}{}",
            "location",
            BUCKET_LABELS.iter().map(|b| format!("{b:>8}")).collect::<String>()
        );
        for (loc, row) in LOCATIONS.iter().zip(h.iter()) {
            let _ = writeln!(
                s,
                "  {:<10}{}",
                loc,
                row.iter().map(|v| format!("{v:>8}")).collect::<String>()
            );
        }
        let _ = writeln!(s, "  correlation across locations (% of affected tests):");
        for (subset, pct) in location_correlation(&cell.results, kind) {
            let _ = writeln!(s, "    {subset:<10}{pct:>6.1}%");
        }
    }
    s
}

/// Figure 8 — percentage of tests with content divergence per agent pair.
pub fn render_fig8(cells: &[&CampaignResult]) -> String {
    let mut s = header("Figure 8: % of tests with content divergence per agent pair");
    let _ = writeln!(
        s,
        "{:<12}{}",
        "pair",
        cells.iter().map(|c| format!("{:>10}", c.config.test.service.name())).collect::<String>()
    );
    for pair in PAIRS {
        let vals: String = cells
            .iter()
            .map(|c| {
                let p = pair_prevalence(&c.results, AnomalyKind::ContentDivergence)[&pair];
                format!("{p:>9.1}%")
            })
            .collect();
        let _ = writeln!(s, "{:<12}{}", pair_label(pair), vals);
    }
    s
}

/// Figures 9/10 — cumulative distribution of divergence windows per pair,
/// for each service where the divergence occurs. Unconverged runs are
/// excluded from the CDF and reported separately, as in the paper.
pub fn render_window_cdf(figure_no: u8, kind: WindowKind, cells: &[&CampaignResult]) -> String {
    let what = match kind {
        WindowKind::Content => "content",
        WindowKind::Order => "order",
    };
    let mut s = header(&format!(
        "Figure {figure_no}: cumulative distribution of {what}-divergence windows (seconds)"
    ));
    for cell in cells {
        let _ = writeln!(s, "[{}]", cell.config.test.service);
        let _ = writeln!(
            s,
            "  {:<8}{}{:>14}{:>10}",
            "pair",
            CDF_QS
                .iter()
                .map(|q| format!("{:>8}", format!("p{:.0}", q * 100.0)))
                .collect::<String>(),
            "unconverged",
            "n"
        );
        for pair in PAIRS {
            let windows = largest_windows_secs(&cell.results, kind, pair);
            let qs = quantiles(&windows, &CDF_QS);
            let cols: String = qs
                .iter()
                .map(|q| match q {
                    Some(v) => format!("{v:>8.2}"),
                    None => format!("{:>8}", "-"),
                })
                .collect();
            let nc = nonconvergence_fraction(&cell.results, kind, pair);
            let _ =
                writeln!(s, "  {:<8}{}{:>13.1}%{:>10}", pair_label(pair), cols, nc, windows.len());
        }
    }
    s
}

/// CSV export of a window CDF (one row per converged test, columns
/// service, pair, largest window seconds) for external plotting.
pub fn window_cdf_csv(kind: WindowKind, cells: &[&CampaignResult]) -> String {
    let mut s = String::from("service,pair,largest_window_secs\n");
    for cell in cells {
        for pair in PAIRS {
            for w in largest_windows_secs(&cell.results, kind, pair) {
                let _ =
                    writeln!(s, "{},{},{w:.6}", cell.config.test.service.name(), pair_label(pair));
            }
        }
    }
    s
}

/// CSV export of Figure 3.
pub fn fig3_csv(cells: &[(&CampaignResult, &CampaignResult)]) -> String {
    let mut s = String::from("service,anomaly,prevalence_pct\n");
    for (t1, t2) in cells {
        for kind in AnomalyKind::ALL {
            let results =
                if AnomalyKind::SESSION.contains(&kind) { &t1.results } else { &t2.results };
            let _ = writeln!(
                s,
                "{},{},{:.2}",
                t1.config.test.service.name(),
                kind.short(),
                prevalence(results, kind)
            );
        }
    }
    s
}

/// The totals paragraph of §V ("In total, we ran N tests comprising R reads
/// and W writes…").
pub fn render_totals(cells: &[(&CampaignResult, &CampaignResult)]) -> String {
    let mut s = header("Totals (paper §V, penultimate configuration paragraph)");
    for (t1, t2) in cells {
        let tests = t1.results.len() + t2.results.len();
        let reads = t1.total_reads() + t2.total_reads();
        let writes = t1.total_writes() + t2.total_writes();
        let _ = writeln!(
            s,
            "{}: {} tests comprising {} reads and {} writes",
            t1.config.test.service.name(),
            tests,
            reads,
            writes
        );
    }
    s
}

/// Extension E3 — write-visibility latency (the staleness quantification
/// the paper's related work discusses): median/p95/never-observed per
/// locality class.
pub fn render_visibility(cells: &[&CampaignResult]) -> String {
    let mut s = header("Extension E3: write-visibility latency (seconds)");
    let _ = writeln!(
        s,
        "{:<12}{:>12}{:>22}{:>12}{:>10}{:>12}",
        "service", "class", "(writer→reader)", "median", "p95", "unobserved"
    );
    // A class nobody observed has no percentiles (distinct from genuine
    // zero-latency visibility): render "—".
    let fmt_secs = |v: Option<f64>| match v {
        Some(secs) => format!("{secs:.3}"),
        None => "—".to_string(),
    };
    for cell in cells {
        let (local, same, remote) = stats::visibility_by_locality(&cell.results);
        for (class, pairing, v) in [
            ("local", "self", &local),
            ("same-entry", "shared door", &same),
            ("remote", "cross-door", &remote),
        ] {
            let unobserved = 100.0 * (v.total - v.observed) as f64 / v.total.max(1) as f64;
            let _ = writeln!(
                s,
                "{:<12}{:>12}{:>22}{:>12}{:>10}{:>11.1}%",
                cell.config.test.service.name(),
                class,
                pairing,
                fmt_secs(v.median_secs),
                fmt_secs(v.p95_secs),
                unobserved
            );
        }
    }
    s
}

/// Clock-sync ablation table (A2): estimator error vs claimed uncertainty.
pub fn render_clock_ablation(cells: &[&CampaignResult]) -> String {
    let mut s = header("Ablation A2: clock-sync estimate error (mean |error|, ms)");
    let _ = writeln!(s, "{:<12}{:>10}{:>10}{:>10}", "campaign", "Oregon", "Tokyo", "Ireland");
    for cell in cells {
        let e = stats::clock_error_ms(&cell.results);
        let _ = writeln!(
            s,
            "{:<12}{:>10.2}{:>10.2}{:>10.2}",
            cell.config.test.service.name(),
            e[0],
            e[1],
            e[2]
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use crate::proto::TestKind;
    use conprobe_services::ServiceKind;

    fn tiny(service: ServiceKind, kind: TestKind) -> CampaignResult {
        let mut c = CampaignConfig::paper(service, kind, 2);
        c.threads = 2;
        run_campaign(&c)
    }

    #[test]
    fn renderers_produce_expected_rows() {
        let t1 = tiny(ServiceKind::Blogger, TestKind::Test1);
        let t2 = tiny(ServiceKind::Blogger, TestKind::Test2);

        let table1 = render_table1(&[&t1]);
        assert!(table1.contains("300ms"), "{table1}");
        assert!(table1.contains("Number of tests executed"), "{table1}");
        assert!(table1.contains('2'));

        let table2 = render_table2(&[&t2]);
        assert!(table2.contains("300ms(13X)+1s"), "{table2}");
        assert!(table2.contains("20"), "{table2}");

        let fig3 = render_fig3(&[(&t1, &t2)]);
        assert!(fig3.contains("read your writes"), "{fig3}");
        assert!(fig3.contains("0.0%"), "Blogger is clean: {fig3}");

        let fig4 = render_observation_figure(4, AnomalyKind::ReadYourWrites, &[&t1]);
        assert!(fig4.contains("no read your writes anomalies"), "{fig4}");

        let fig8 = render_fig8(&[&t2]);
        assert!(fig8.contains("OR-JP"), "{fig8}");

        let fig9 = render_window_cdf(9, WindowKind::Content, &[&t2]);
        assert!(fig9.contains("p50"), "{fig9}");
        assert!(fig9.contains("unconverged"), "{fig9}");

        let totals = render_totals(&[(&t1, &t2)]);
        assert!(totals.contains("4 tests"), "{totals}");

        let ablation = render_clock_ablation(&[&t1]);
        assert!(ablation.contains("Oregon"), "{ablation}");

        let vis = render_visibility(&[&t2]);
        assert!(vis.contains("write-visibility"), "{vis}");
        assert!(vis.contains("cross-door"), "{vis}");
        assert!(vis.contains("0.0%"), "Blogger leaves nothing unobserved: {vis}");
        // Blogger has one front door: the remote class is empty and its
        // percentiles render as "—", never as a fake 0.000.
        assert!(vis.contains("—"), "empty class renders dashes: {vis}");

        let csv = fig3_csv(&[(&t1, &t2)]);
        assert!(csv.lines().count() == 1 + 6, "{csv}");
        let wcsv = window_cdf_csv(WindowKind::Content, &[&t2]);
        assert!(wcsv.starts_with("service,pair"), "{wcsv}");
    }
}
