//! The transport seam between measurement logic and the network.
//!
//! The paper's agents spoke HTTP to live services; our reproduction mostly
//! drives the same agent logic over the simulated WAN. This module pins the
//! boundary down as a pair of traits so both paths are provably the same
//! code:
//!
//! * [`Transport`] — the *event-driven* side used inside a simulation: a
//!   fire-and-forget request send, with responses delivered back through
//!   the normal [`Node::on_message`](conprobe_sim::Node::on_message) path.
//!   [`SimRpc`] is the in-sim implementation; [`AgentNode`](crate::agent)
//!   issues every operation (first transmissions *and* retransmits)
//!   through it.
//! * [`ServiceEndpoint`] — the *blocking* side used by real-network
//!   clients: one call, one response, over whatever wire the
//!   implementation owns. `conprobe-wire`'s TCP client implements this;
//!   the live probe agents and the load generator are written against the
//!   trait, so an in-process fake can stand in for a socket in tests.
//!
//! Keeping both traits here (rather than in the wire crate) lets the
//! harness stay ignorant of sockets while the wire crate reuses the
//! harness's agent cadence, clock-sync estimator and trace types.

use crate::proto::Msg;
use conprobe_services::{ClientOp, NetMsg, OpResult};
use conprobe_sim::{Context, NodeId};

/// Event-driven request transport used by in-sim agents.
///
/// Implementations send `op` tagged with `req_id` toward the service; the
/// response (if any) arrives later as a
/// [`NetMsg::Response`](conprobe_services::NetMsg) carrying the same
/// `req_id`. The transport owns *where* the request goes; the agent owns
/// retries, timeouts and logging. (`Send` because campaign workers move
/// whole worlds — agents included — across OS threads.)
pub trait Transport: Send {
    /// Sends one request. Fire-and-forget: delivery and reply are the
    /// network's problem.
    fn send_request(&mut self, ctx: &mut Context<'_, Msg>, req_id: u64, op: ClientOp);
}

/// The simulated RPC path: requests go to a fixed service front door over
/// the in-sim network, exactly as the pre-trait agent did with a direct
/// `ctx.send`. Byte-for-byte identical event sequences — the golden
/// determinism fingerprints prove it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimRpc {
    entry: NodeId,
}

impl SimRpc {
    /// A transport aimed at the given service front door.
    pub fn new(entry: NodeId) -> Self {
        SimRpc { entry }
    }

    /// The service front door this transport targets.
    pub fn entry(&self) -> NodeId {
        self.entry
    }
}

impl Transport for SimRpc {
    fn send_request(&mut self, ctx: &mut Context<'_, Msg>, req_id: u64, op: ClientOp) {
        ctx.send(self.entry, NetMsg::Request { req_id, op });
    }
}

/// A transport-level failure from a blocking endpoint: the connection
/// died, the peer spoke garbage, or the protocol versions disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointError(pub String);

impl std::fmt::Display for EndpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for EndpointError {}

/// Blocking request/response endpoint used by live (real-network) clients.
///
/// One call issues one operation and waits for its result; clock probes
/// read the *server's* clock so the caller can run the Cristian estimator
/// from [`clocksync`](crate::clocksync) over the wire.
pub trait ServiceEndpoint {
    /// Issues one operation and blocks until the service answers.
    fn call(&mut self, op: ClientOp) -> Result<OpResult, EndpointError>;

    /// Reads the remote server's clock: nanoseconds on the server's own
    /// timeline. Wrapping this between two local clock readings yields a
    /// [`ProbeSample`](crate::clocksync::ProbeSample) whose
    /// `agent_reading` is the server's reading.
    fn server_clock(&mut self) -> Result<i64, EndpointError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use conprobe_services::ServiceKind;
    use conprobe_sim::net::Region;
    use conprobe_sim::{Node, World, WorldConfig};
    use conprobe_store::PostId;
    use std::sync::{Arc, Mutex};

    struct OneShot {
        transport: SimRpc,
        seen: Arc<Mutex<Vec<OpResult>>>,
    }

    impl Node<Msg> for OneShot {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            self.transport.send_request(ctx, 7, ClientOp::Read);
        }

        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
            if let NetMsg::Response { req_id, result } = msg {
                assert_eq!(req_id, 7);
                self.seen.lock().unwrap().push(result);
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _token: u64) {}
    }

    #[test]
    fn sim_rpc_round_trips_through_the_service_front_door() {
        let mut world: World<Msg> = World::new(WorldConfig::default(), 42);
        let cluster = conprobe_services::deploy(&mut world, ServiceKind::Blogger);
        let entry = cluster.entry_for(Region::Oregon);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let node = OneShot { transport: SimRpc::new(entry), seen: Arc::clone(&seen) };
        world.add_node(Region::Oregon, Box::new(node));
        world.run_until_idle();
        let got = seen.lock().unwrap();
        assert_eq!(got.as_slice(), &[OpResult::ReadOk(Vec::<PostId>::new())]);
    }
}
