//! The coordinator (North Virginia).
//!
//! Before every test the coordinator re-estimates each agent's clock delta
//! (the paper recomputes deltas "before the start of each iteration of a
//! test"), then schedules a synchronized start, waits for every agent's
//! completion signal (or a timeout — e.g. a partition can keep Test 1's M6
//! from ever reaching Tokyo), collects the local logs, and merges them onto
//! its own timeline using the estimated deltas.

use crate::clocksync::{estimate, DeltaEstimate, ProbeSample};
use crate::proto::{AgentTestPlan, HarnessMsg, LocalOpRecord, Msg, TestKind};
use conprobe_core::trace::{AgentId, OpRecord, TestTrace, Timestamp};
use conprobe_obs::Severity;
use conprobe_services::NetMsg;
use conprobe_sim::{Context, LocalTime, Node, NodeId, ObsSink, SimDuration, SimTime};
use conprobe_store::PostId;
use std::collections::{BTreeMap, HashMap, HashSet};

const TOKEN_PROBE: u64 = 1;
const TOKEN_TIMEOUT: u64 = 2;
const TOKEN_STOP_RETRY: u64 = 3;
const TOKEN_FINALIZE: u64 = 4;
const TOKEN_START_RETRY: u64 = 5;
const TOKEN_LIVENESS: u64 = 6;

/// Pause between Stop retransmission rounds while collecting logs.
const STOP_RETRY_PERIOD: SimDuration = SimDuration::from_secs(2);
/// Stop retransmission rounds before a silent agent is quarantined and the
/// test concludes with a partial (salvaged) trace. Bounds what used to be
/// an unbounded retry loop: a dead agent now costs
/// `MAX_STOP_ROUNDS × STOP_RETRY_PERIOD` of collection time, not the full
/// finalize grace period.
const MAX_STOP_ROUNDS: u32 = 5;
/// How often the coordinator re-evaluates agent liveness while running.
const LIVENESS_PERIOD: SimDuration = SimDuration::from_secs(2);
/// An agent whose last heartbeat is older than this is considered dead
/// (agents beacon every second; six consecutive losses are implausible on
/// a merely lossy link).
const DEAD_AFTER_NANOS: i64 = 6_000_000_000;

/// Static configuration of one test run, from the coordinator's viewpoint.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// The agent node ids, in agent-index order (Oregon, Tokyo, Ireland).
    pub agents: Vec<NodeId>,
    /// The service front door for each agent.
    pub entries: Vec<NodeId>,
    /// Which test to run.
    pub kind: TestKind,
    /// Clock probes per agent (averaged).
    pub probes_per_agent: u32,
    /// Pause between successive probes.
    pub probe_spacing: SimDuration,
    /// Margin between sync completion and the synchronized start (must
    /// exceed the worst agent RTT so the `Start` message arrives in time).
    pub start_margin: SimDuration,
    /// Give up and stop the test after this long past the start.
    pub max_duration: SimDuration,
    /// Background read period (Tables I/II).
    pub read_period: SimDuration,
    /// Test 2: fast reads before switching to `slow_period`.
    pub fast_reads: u32,
    /// Test 2: slow read period.
    pub slow_period: SimDuration,
    /// Test 2: per-agent read quota.
    pub reads_target: u32,
}

/// Per-agent liveness summary at the end of a test (part of the fault
/// ledger).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentHealth {
    /// The agent's index.
    pub agent_index: u32,
    /// Heartbeats received from the agent.
    pub heartbeats: u64,
    /// The agent was written off as dead or unreachable (its Stop retry
    /// budget ran out, or it went silent and the test concluded without
    /// it).
    pub quarantined: bool,
    /// The agent's operation log made it back to the coordinator.
    pub log_collected: bool,
}

/// Everything the coordinator knows at the end of a test.
#[derive(Debug, Clone)]
pub struct TestOutcome {
    /// The merged, clock-corrected trace.
    pub trace: TestTrace<PostId>,
    /// Per-agent delta estimates used for the correction.
    pub deltas: Vec<DeltaEstimate>,
    /// `true` if every agent reported completion before the timeout and
    /// no agent had to be quarantined.
    pub completed: bool,
    /// Coordinator-local nanoseconds from synchronized start to the last
    /// collected log.
    pub duration_nanos: i64,
    /// Per-agent liveness accounting.
    pub agent_health: Vec<AgentHealth>,
    /// `true` if the trace is a coherent *partial* view: one or more
    /// agents were quarantined and their operations are missing.
    pub salvaged: bool,
}

#[derive(Debug, PartialEq, Eq)]
enum Phase {
    Probing,
    Running,
    Collecting,
    Done,
}

impl Phase {
    fn name(&self) -> &'static str {
        match self {
            Phase::Probing => "probing",
            Phase::Running => "running",
            Phase::Collecting => "collecting",
            Phase::Done => "done",
        }
    }
}

/// The coordinator node.
pub struct CoordinatorNode {
    cfg: CoordinatorConfig,
    phase: Phase,
    next_probe_id: u64,
    in_flight: HashMap<u64, (usize, LocalTime)>,
    samples: Vec<Vec<ProbeSample>>,
    deltas: Vec<DeltaEstimate>,
    completions: HashSet<u32>,
    start_acks: HashSet<u32>,
    plans: Vec<AgentTestPlan>,
    logs: BTreeMap<u32, Vec<LocalOpRecord>>,
    started_at: LocalTime,
    timed_out: bool,
    stop_sent: bool,
    outcome: Option<TestOutcome>,
    /// Heartbeats received per agent.
    heartbeats: Vec<u64>,
    /// Coordinator-local receipt time of each agent's latest heartbeat.
    last_heartbeat: Vec<Option<LocalTime>>,
    /// Agents written off as dead/unreachable.
    quarantined: HashSet<u32>,
    /// Stop retransmission rounds spent so far.
    stop_rounds: u32,
    /// Coordinator-local time the Start messages went out (liveness
    /// baseline for agents that never heartbeat).
    running_since: LocalTime,
    /// Observability sink, resolved in `on_start` (None = telemetry off).
    obs: Option<ObsSink>,
    /// True-sim-time start of the current phase, for the per-phase spans
    /// accumulated under `harness.coordinator.phase.<name>.nanos`.
    phase_started_at: SimTime,
}

impl CoordinatorNode {
    /// Creates a coordinator for one test.
    ///
    /// # Panics
    ///
    /// Panics if the agent and entry lists differ in length or are empty.
    pub fn new(cfg: CoordinatorConfig) -> Self {
        assert!(!cfg.agents.is_empty(), "a test needs at least one agent");
        assert_eq!(cfg.agents.len(), cfg.entries.len(), "one service entry per agent");
        let n = cfg.agents.len();
        CoordinatorNode {
            cfg,
            phase: Phase::Probing,
            next_probe_id: 0,
            in_flight: HashMap::new(),
            samples: vec![Vec::new(); n],
            deltas: Vec::new(),
            completions: HashSet::new(),
            start_acks: HashSet::new(),
            plans: Vec::new(),
            logs: BTreeMap::new(),
            started_at: LocalTime::from_nanos(0),
            timed_out: false,
            stop_sent: false,
            outcome: None,
            heartbeats: vec![0; n],
            last_heartbeat: vec![None; n],
            quarantined: HashSet::new(),
            stop_rounds: 0,
            running_since: LocalTime::from_nanos(0),
            obs: None,
            phase_started_at: SimTime::ZERO,
        }
    }

    /// Closes the span of the phase that just ended and logs the
    /// transition. Call *before* assigning the new phase; pure
    /// instrumentation — a no-op without a sink.
    fn note_phase_change(&mut self, ctx: &Context<'_, Msg>, to: &Phase) {
        let now = ctx.true_now();
        if let Some(obs) = &self.obs {
            let elapsed = now.saturating_since(self.phase_started_at).as_nanos();
            let name = self.phase.name();
            obs.metrics.counter(&format!("harness.coordinator.phase.{name}.nanos")).add(elapsed);
            obs.metrics.counter(&format!("harness.coordinator.phase.{name}.count")).inc();
            if obs.log.enabled(Severity::Info, "harness") {
                obs.log.record(
                    now.as_nanos(),
                    Severity::Info,
                    "harness",
                    format!("coordinator phase {name} -> {}", to.name()),
                );
            }
        }
        self.phase_started_at = now;
    }

    /// The test outcome, available once the run has finished.
    pub fn outcome(&self) -> Option<&TestOutcome> {
        self.outcome.as_ref()
    }

    /// The delta estimates (available once probing finished).
    pub fn deltas(&self) -> &[DeltaEstimate] {
        &self.deltas
    }

    fn agent_needing_probe(&self) -> Option<usize> {
        let want = self.cfg.probes_per_agent as usize;
        (0..self.cfg.agents.len())
            .filter(|i| self.samples[*i].len() < want)
            .min_by_key(|i| self.samples[*i].len())
    }

    fn send_probe(&mut self, ctx: &mut Context<'_, Msg>, agent_idx: usize) {
        let probe_id = self.next_probe_id;
        self.next_probe_id += 1;
        self.in_flight.insert(probe_id, (agent_idx, ctx.now_local()));
        ctx.send(self.cfg.agents[agent_idx], NetMsg::App(HarnessMsg::TimeProbe { probe_id }));
    }

    fn start_test(&mut self, ctx: &mut Context<'_, Msg>) {
        self.note_phase_change(ctx, &Phase::Running);
        self.phase = Phase::Running;
        self.deltas = self.samples.iter().map(|s| estimate(s)).collect();
        let target = ctx.now_local().offset_by(self.cfg.start_margin.as_nanos() as i64);
        self.started_at = target;
        for (i, agent) in self.cfg.agents.iter().copied().enumerate() {
            // Agent-local start instant: coordinator target plus the
            // agent's estimated delta, so true start times align.
            let start_at_local = target.offset_by(self.deltas[i].delta_nanos);
            let plan = AgentTestPlan {
                kind: self.cfg.kind,
                agent_index: i as u32,
                total_agents: self.cfg.agents.len() as u32,
                service_entry: self.cfg.entries[i],
                read_period: self.cfg.read_period,
                fast_reads: self.cfg.fast_reads,
                slow_period: self.cfg.slow_period,
                reads_target: self.cfg.reads_target,
                start_at_local,
            };
            ctx.send(agent, NetMsg::App(HarnessMsg::Start(Box::new(plan.clone()))));
            self.plans.push(plan);
        }
        ctx.set_timer(self.cfg.start_margin + self.cfg.max_duration, TOKEN_TIMEOUT);
        ctx.set_timer(SimDuration::from_millis(700), TOKEN_START_RETRY);
        self.running_since = ctx.now_local();
        ctx.set_timer(LIVENESS_PERIOD, TOKEN_LIVENESS);
    }

    /// Whether agent `i` currently looks dead: no heartbeat for longer
    /// than the liveness window (or never, counting from test start plus
    /// the start margin). Purely observational — a later heartbeat makes
    /// the agent look alive again.
    fn looks_dead(&self, i: usize, now: LocalTime) -> bool {
        match self.last_heartbeat[i] {
            Some(at) => now.delta_nanos(at) > DEAD_AFTER_NANOS,
            None => {
                now.delta_nanos(self.running_since)
                    > DEAD_AFTER_NANOS + self.cfg.start_margin.as_nanos() as i64
            }
        }
    }

    /// Concludes collection with whatever arrived: agents without a log
    /// are quarantined, their logs recorded as empty, and the outcome is
    /// flagged as salvaged.
    fn salvage_finish(&mut self, ctx: &mut Context<'_, Msg>) {
        for i in 0..self.cfg.agents.len() as u32 {
            if !self.logs.contains_key(&i) {
                self.quarantined.insert(i);
                self.logs.insert(i, Vec::new());
            }
        }
        self.finish(ctx);
    }

    fn send_stop(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.stop_sent {
            return;
        }
        self.stop_sent = true;
        self.note_phase_change(ctx, &Phase::Collecting);
        self.phase = Phase::Collecting;
        for agent in self.cfg.agents.clone() {
            ctx.send(agent, NetMsg::App(HarnessMsg::Stop));
        }
        // Retry Stop to agents whose logs have not arrived (loss
        // tolerance), and give up on stragglers after a generous grace
        // period so a test always concludes.
        ctx.set_timer(SimDuration::from_secs(2), TOKEN_STOP_RETRY);
        ctx.set_timer(SimDuration::from_secs(60), TOKEN_FINALIZE);
    }

    fn finish(&mut self, ctx: &mut Context<'_, Msg>) {
        let mut ops: Vec<OpRecord<PostId>> = Vec::new();
        for (agent_index, records) in &self.logs {
            let delta = self.deltas[*agent_index as usize];
            for r in records {
                ops.push(OpRecord {
                    agent: AgentId(*agent_index),
                    invoke: Timestamp::from_nanos(delta.to_coordinator(r.invoke).as_nanos()),
                    response: Timestamp::from_nanos(delta.to_coordinator(r.response).as_nanos()),
                    kind: r.kind.clone(),
                });
            }
        }
        self.note_phase_change(ctx, &Phase::Done);
        self.phase = Phase::Done;
        let agent_health = (0..self.cfg.agents.len() as u32)
            .map(|i| AgentHealth {
                agent_index: i,
                heartbeats: self.heartbeats[i as usize],
                quarantined: self.quarantined.contains(&i),
                log_collected: !self.quarantined.contains(&i),
            })
            .collect();
        self.outcome = Some(TestOutcome {
            trace: TestTrace::new(ops),
            deltas: self.deltas.clone(),
            completed: !self.timed_out && self.quarantined.is_empty(),
            duration_nanos: ctx.now_local().delta_nanos(self.started_at),
            agent_health,
            salvaged: !self.quarantined.is_empty(),
        });
    }
}

impl Node<Msg> for CoordinatorNode {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        self.obs = ctx.obs().cloned();
        self.phase_started_at = ctx.true_now();
        ctx.set_timer(SimDuration::ZERO, TOKEN_PROBE);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            NetMsg::App(HarnessMsg::TimeReply { probe_id, local }) => {
                if self.phase != Phase::Probing {
                    return;
                }
                let Some((agent_idx, sent)) = self.in_flight.remove(&probe_id) else {
                    return;
                };
                self.samples[agent_idx].push(ProbeSample {
                    sent,
                    received: ctx.now_local(),
                    agent_reading: local,
                });
                if self.agent_needing_probe().is_none() {
                    self.start_test(ctx);
                }
            }
            NetMsg::App(HarnessMsg::StartAck { agent_index }) => {
                self.start_acks.insert(agent_index);
            }
            NetMsg::App(HarnessMsg::Heartbeat { agent_index }) => {
                if let Some(slot) = self.last_heartbeat.get_mut(agent_index as usize) {
                    *slot = Some(ctx.now_local());
                    self.heartbeats[agent_index as usize] += 1;
                }
            }
            NetMsg::App(HarnessMsg::CompletionSeen { agent_index }) => {
                if self.phase != Phase::Running {
                    return;
                }
                self.completions.insert(agent_index);
                if self.completions.len() == self.cfg.agents.len() {
                    self.send_stop(ctx);
                }
            }
            NetMsg::App(HarnessMsg::Log { agent_index, records }) => {
                if self.phase != Phase::Collecting {
                    return;
                }
                self.logs.insert(agent_index, records);
                if self.logs.len() == self.cfg.agents.len() {
                    self.finish(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: u64) {
        match token {
            TOKEN_PROBE => {
                if self.phase != Phase::Probing {
                    return;
                }
                if let Some(idx) = self.agent_needing_probe() {
                    // Probes are sequential (one in flight), per Cristian.
                    // Drop probes that have been in flight implausibly long
                    // (lost request or reply) so probing self-heals.
                    let now = ctx.now_local();
                    self.in_flight.retain(|_, (_, sent)| now.delta_nanos(*sent) < 3_000_000_000);
                    if self.in_flight.is_empty() {
                        self.send_probe(ctx, idx);
                    }
                    ctx.set_timer(self.cfg.probe_spacing, TOKEN_PROBE);
                }
            }
            TOKEN_TIMEOUT if self.phase == Phase::Running => {
                self.timed_out = true;
                self.send_stop(ctx);
            }
            TOKEN_START_RETRY
                if self.phase == Phase::Running
                    && self.start_acks.len() < self.cfg.agents.len() =>
            {
                for (i, agent) in self.cfg.agents.clone().into_iter().enumerate() {
                    if !self.start_acks.contains(&(i as u32)) {
                        let plan = self.plans[i].clone();
                        ctx.send(agent, NetMsg::App(HarnessMsg::Start(Box::new(plan))));
                    }
                }
                ctx.set_timer(SimDuration::from_millis(700), TOKEN_START_RETRY);
            }
            TOKEN_STOP_RETRY if self.phase == Phase::Collecting => {
                self.stop_rounds += 1;
                if self.stop_rounds > MAX_STOP_ROUNDS {
                    // Retry budget exhausted: quarantine the silent
                    // agents and salvage a coherent partial trace from
                    // the logs that did arrive.
                    self.salvage_finish(ctx);
                    return;
                }
                for (i, agent) in self.cfg.agents.clone().into_iter().enumerate() {
                    if !self.logs.contains_key(&(i as u32)) {
                        ctx.send(agent, NetMsg::App(HarnessMsg::Stop));
                    }
                }
                ctx.set_timer(STOP_RETRY_PERIOD, TOKEN_STOP_RETRY);
            }
            TOKEN_FINALIZE if self.phase == Phase::Collecting => {
                // Backstop behind the Stop retry budget (kept in case
                // the budget is ever raised past it): stragglers are
                // quarantined and the test concludes.
                self.timed_out = true;
                self.salvage_finish(ctx);
            }
            TOKEN_LIVENESS if self.phase == Phase::Running => {
                // Graceful degradation: when every agent that still
                // looks alive has completed and at least one looks
                // dead, stop now instead of waiting out max_duration
                // for a completion that can never arrive.
                let now = ctx.now_local();
                let n = self.cfg.agents.len();
                let any_dead = (0..n).any(|i| self.looks_dead(i, now));
                let live_done = (0..n)
                    .all(|i| self.looks_dead(i, now) || self.completions.contains(&(i as u32)));
                if any_dead && live_done {
                    self.timed_out = true;
                    self.send_stop(ctx);
                } else {
                    ctx.set_timer(LIVENESS_PERIOD, TOKEN_LIVENESS);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(agents: Vec<NodeId>, entries: Vec<NodeId>) -> CoordinatorConfig {
        CoordinatorConfig {
            agents,
            entries,
            kind: TestKind::Test1,
            probes_per_agent: 3,
            probe_spacing: SimDuration::from_millis(50),
            start_margin: SimDuration::from_secs(1),
            max_duration: SimDuration::from_secs(60),
            read_period: SimDuration::from_millis(300),
            fast_reads: 0,
            slow_period: SimDuration::from_secs(1),
            reads_target: 0,
        }
    }

    #[test]
    fn constructor_validates_shapes() {
        let c = CoordinatorNode::new(cfg(vec![NodeId(1)], vec![NodeId(0)]));
        assert!(c.outcome().is_none());
        assert!(c.deltas().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn rejects_empty_agent_list() {
        let _ = CoordinatorNode::new(cfg(vec![], vec![]));
    }

    #[test]
    #[should_panic(expected = "one service entry per agent")]
    fn rejects_mismatched_entries() {
        let _ = CoordinatorNode::new(cfg(vec![NodeId(1), NodeId(2)], vec![NodeId(0)]));
    }
}
