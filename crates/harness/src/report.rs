//! Machine-readable study reports.
//!
//! The text renderers in [`crate::figures`] reproduce the paper's artifacts
//! for humans; [`StudyReport`] aggregates the same quantities into a
//! serializable structure for downstream tooling (plotting, regression
//! tracking of the calibration, EXPERIMENTS.md generation).

use crate::campaign::CampaignResult;
use crate::figures::CDF_QS;
use crate::stats::{
    self, largest_windows_secs, nonconvergence_fraction, pair_label, pair_prevalence, prevalence,
    quantiles, PAIRS,
};
use conprobe_core::window::WindowKind;
use conprobe_core::AnomalyKind;
use conprobe_json::{member, FromJson, JsonError, JsonValue, ToJson};
use std::collections::BTreeMap;

/// Rounds to microsecond-ish precision so emitted floats have short,
/// stable decimal representations (JSON round-trip fixpoint).
fn round6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

/// Per-pair window statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Quantiles of the largest converged window per test, in seconds, at
    /// [`CDF_QS`] (None where no data).
    pub quantiles_secs: Vec<Option<f64>>,
    /// Percentage of divergent tests that never re-converged.
    pub nonconvergence_pct: f64,
    /// Number of converged windows behind the quantiles.
    pub samples: usize,
}

/// One campaign cell's aggregated numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Instances executed.
    pub tests: usize,
    /// Instances that reached their completion condition.
    pub completed: usize,
    /// Total reads across instances and agents.
    pub total_reads: u64,
    /// Total writes across instances.
    pub total_writes: u64,
    /// Mean reads per agent per test (Table I/II row).
    pub mean_reads_per_agent: f64,
    /// Anomaly prevalence (% of tests), keyed by short label (Fig 3).
    pub prevalence_pct: BTreeMap<String, f64>,
    /// Content divergence per pair (% of tests), keyed by pair label (Fig 8).
    pub content_divergence_per_pair_pct: BTreeMap<String, f64>,
    /// Content-window stats per pair (Fig 9).
    pub content_windows: BTreeMap<String, WindowStats>,
    /// Order-window stats per pair (Fig 10).
    pub order_windows: BTreeMap<String, WindowStats>,
    /// Mean |clock-sync error| per agent, milliseconds (ablation A2).
    pub clock_error_ms: [f64; 3],
}

impl CellReport {
    /// Builds the report for one campaign cell.
    pub fn from_campaign(cell: &CampaignResult) -> Self {
        let results = &cell.results;
        let windows = |kind: WindowKind| -> BTreeMap<String, WindowStats> {
            PAIRS
                .iter()
                .map(|pair| {
                    let w = largest_windows_secs(results, kind, *pair);
                    (
                        pair_label(*pair),
                        WindowStats {
                            quantiles_secs: quantiles(&w, &CDF_QS)
                                .into_iter()
                                .map(|q| q.map(round6))
                                .collect(),
                            nonconvergence_pct: round6(nonconvergence_fraction(
                                results, kind, *pair,
                            )),
                            samples: w.len(),
                        },
                    )
                })
                .collect()
        };
        CellReport {
            tests: results.len(),
            completed: cell.completed(),
            total_reads: cell.total_reads(),
            total_writes: cell.total_writes(),
            mean_reads_per_agent: round6(cell.mean_reads_per_agent()),
            prevalence_pct: AnomalyKind::ALL
                .iter()
                .map(|k| (k.short().to_string(), round6(prevalence(results, *k))))
                .collect(),
            content_divergence_per_pair_pct: pair_prevalence(
                results,
                AnomalyKind::ContentDivergence,
            )
            .into_iter()
            .map(|(p, v)| (pair_label(p), round6(v)))
            .collect(),
            content_windows: windows(WindowKind::Content),
            order_windows: windows(WindowKind::Order),
            clock_error_ms: stats::clock_error_ms(results).map(round6),
        }
    }
}

/// The whole study: one [`CellReport`] per (service, test kind).
#[derive(Debug, Clone, PartialEq)]
pub struct StudyReport {
    /// Generator version (crate version).
    pub generator: String,
    /// Master seed.
    pub seed: u64,
    /// Per-service reports: service name → (test1, test2).
    pub services: BTreeMap<String, (CellReport, CellReport)>,
}

impl StudyReport {
    /// Assembles a report from `(service name, test1 cell, test2 cell)`
    /// triples.
    pub fn new(seed: u64, cells: &[(&str, &CampaignResult, &CampaignResult)]) -> Self {
        StudyReport {
            generator: format!("conprobe-harness {}", env!("CARGO_PKG_VERSION")),
            seed,
            services: cells
                .iter()
                .map(|(name, t1, t2)| {
                    (
                        name.to_string(),
                        (CellReport::from_campaign(t1), CellReport::from_campaign(t2)),
                    )
                })
                .collect(),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).to_pretty()
    }
}

fn map_to_json<V: ToJson>(map: &BTreeMap<String, V>) -> JsonValue {
    JsonValue::Object(map.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
}

fn map_from_json<V: FromJson>(v: &JsonValue) -> Result<BTreeMap<String, V>, JsonError> {
    v.as_object()
        .ok_or_else(|| JsonError::schema("expected object"))?
        .iter()
        .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
        .collect()
}

impl ToJson for WindowStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("quantiles_secs".into(), self.quantiles_secs.to_json()),
            ("nonconvergence_pct".into(), self.nonconvergence_pct.to_json()),
            ("samples".into(), self.samples.to_json()),
        ])
    }
}

impl FromJson for WindowStats {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        Ok(WindowStats {
            quantiles_secs: Vec::from_json(member(v, "quantiles_secs")?)?,
            nonconvergence_pct: f64::from_json(member(v, "nonconvergence_pct")?)?,
            samples: usize::from_json(member(v, "samples")?)?,
        })
    }
}

impl ToJson for CellReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("tests".into(), self.tests.to_json()),
            ("completed".into(), self.completed.to_json()),
            ("total_reads".into(), self.total_reads.to_json()),
            ("total_writes".into(), self.total_writes.to_json()),
            ("mean_reads_per_agent".into(), self.mean_reads_per_agent.to_json()),
            ("prevalence_pct".into(), map_to_json(&self.prevalence_pct)),
            (
                "content_divergence_per_pair_pct".into(),
                map_to_json(&self.content_divergence_per_pair_pct),
            ),
            ("content_windows".into(), map_to_json(&self.content_windows)),
            ("order_windows".into(), map_to_json(&self.order_windows)),
            ("clock_error_ms".into(), self.clock_error_ms.to_vec().to_json()),
        ])
    }
}

impl FromJson for CellReport {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let clock: Vec<f64> = Vec::from_json(member(v, "clock_error_ms")?)?;
        let clock_error_ms: [f64; 3] = clock
            .try_into()
            .map_err(|_| JsonError::schema("clock_error_ms must have 3 entries"))?;
        Ok(CellReport {
            tests: usize::from_json(member(v, "tests")?)?,
            completed: usize::from_json(member(v, "completed")?)?,
            total_reads: u64::from_json(member(v, "total_reads")?)?,
            total_writes: u64::from_json(member(v, "total_writes")?)?,
            mean_reads_per_agent: f64::from_json(member(v, "mean_reads_per_agent")?)?,
            prevalence_pct: map_from_json(member(v, "prevalence_pct")?)?,
            content_divergence_per_pair_pct: map_from_json(member(
                v,
                "content_divergence_per_pair_pct",
            )?)?,
            content_windows: map_from_json(member(v, "content_windows")?)?,
            order_windows: map_from_json(member(v, "order_windows")?)?,
            clock_error_ms,
        })
    }
}

impl ToJson for StudyReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("generator".into(), self.generator.to_json()),
            ("seed".into(), self.seed.to_json()),
            ("services".into(), map_to_json(&self.services)),
        ])
    }
}

impl FromJson for StudyReport {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        Ok(StudyReport {
            generator: String::from_json(member(v, "generator")?)?,
            seed: u64::from_json(member(v, "seed")?)?,
            services: map_from_json(member(v, "services")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use crate::proto::TestKind;
    use conprobe_services::ServiceKind;

    fn cell(service: ServiceKind, kind: TestKind) -> CampaignResult {
        let mut c = CampaignConfig::paper(service, kind, 2);
        c.threads = 2;
        run_campaign(&c)
    }

    #[test]
    fn report_round_trips_through_json() {
        let t1 = cell(ServiceKind::Blogger, TestKind::Test1);
        let t2 = cell(ServiceKind::Blogger, TestKind::Test2);
        let report = StudyReport::new(42, &[("Blogger", &t1, &t2)]);
        let json = report.to_json();
        let back = StudyReport::from_json(&conprobe_json::parse(&json).unwrap()).unwrap();
        // Floats may lose a ULP through JSON; a second serialization is a
        // fixpoint, so compare at the JSON level.
        assert_eq!(json, back.to_json());
        assert_eq!(report.services.len(), back.services.len());
        assert!(json.contains("\"RYW\""));
        assert!(json.contains("OR-JP"));
    }

    #[test]
    fn blogger_cell_report_is_clean_and_complete() {
        let t1 = cell(ServiceKind::Blogger, TestKind::Test1);
        let report = CellReport::from_campaign(&t1);
        assert_eq!(report.tests, 2);
        assert_eq!(report.completed, 2);
        assert_eq!(report.total_writes, 12);
        for (k, v) in &report.prevalence_pct {
            assert_eq!(*v, 0.0, "{k} must be 0 for Blogger");
        }
        assert_eq!(report.prevalence_pct.len(), 6);
        for w in report.content_windows.values() {
            assert_eq!(w.samples, 0);
        }
    }

    #[test]
    fn anomalous_cell_report_carries_prevalence() {
        let t1 = cell(ServiceKind::FacebookGroup, TestKind::Test1);
        let report = CellReport::from_campaign(&t1);
        assert_eq!(report.prevalence_pct["MW"], 100.0);
        assert_eq!(report.prevalence_pct["RYW"], 0.0);
    }
}
