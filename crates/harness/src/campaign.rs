//! Measurement campaigns: many tests, fresh worlds, Tables I/II parameters.
//!
//! The paper ran each service for ~30 days, alternating four-day blocks of
//! Test 1 and Test 2, re-synchronizing clocks before every test, waiting a
//! rate-limit-imposed pause between tests, totalling ~1,000 instances per
//! (service, test) cell. A [`CampaignConfig`] captures one such cell; the
//! runner executes its instances in parallel across OS threads (each test
//! is an independent world with its own derived seed).

use crate::journal::{result_from_json, Journal, Recovery};
use crate::proto::TestKind;
use crate::runner::{run_one_test, TestConfig, TestResult};
use conprobe_obs::Severity;
use conprobe_services::ServiceKind;
use conprobe_sim::{SimDuration, SimRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One (service, test-kind) campaign cell.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The per-test configuration.
    pub test: TestConfig,
    /// Number of test instances.
    pub tests: u32,
    /// Master seed; each instance derives its own.
    pub seed: u64,
    /// Pause between successive tests (Tables I/II; recorded for the
    /// config tables — instances are isolated worlds, so the pause has no
    /// further effect here).
    pub between_tests: SimDuration,
    /// Instance indices run with the Tokyo-side replica partitioned (the FB
    /// Group transient-fault episodes).
    pub partition_tests: Vec<u32>,
    /// Worker threads (0 ⇒ all available parallelism).
    pub threads: usize,
    /// Instance indices whose worker deliberately panics (test hook for
    /// panic isolation and kill-and-resume drills; empty in real
    /// campaigns). A panicking instance is quarantined, not re-run.
    pub inject_panic: Vec<u32>,
}

impl CampaignConfig {
    /// The paper's campaign cell for `service` × `kind`, scaled to `tests`
    /// instances (the paper ran ~1,000 per cell; smaller counts keep the
    /// same statistics with wider error bars).
    ///
    /// `between_tests` reproduces Tables I/II: Test 1 — Google+ 34 min,
    /// Blogger 20 min, FB Feed/Group 5 min; Test 2 — 17/10/5/5 min.
    /// For FB Group Test 2, a contiguous run of partitioned instances plus
    /// a few isolated ones reproduces the paper's 15 content-divergence
    /// occurrences, "9 of which happened across a sequence of tests".
    pub fn paper(service: ServiceKind, kind: TestKind, tests: u32) -> Self {
        let between_min = match (service, kind) {
            (ServiceKind::GooglePlus, TestKind::Test1) => 34,
            (ServiceKind::Blogger, TestKind::Test1) => 20,
            (_, TestKind::Test1) => 5,
            (ServiceKind::GooglePlus, TestKind::Test2) => 17,
            (ServiceKind::Blogger, TestKind::Test2) => 10,
            (_, TestKind::Test2) => 5,
        };
        let partition_tests = if service == ServiceKind::FacebookGroup && tests >= 20 {
            // A contiguous partition episode (~0.6 % of instances, ≥ 5
            // tests) plus two isolated glitches.
            let episode_len = ((tests as f64 * 0.006).round() as u32).max(5).min(tests / 2);
            let start = tests * 2 / 5;
            let mut v: Vec<u32> = (start..start + episode_len).collect();
            v.push(tests / 10);
            v.push(tests * 4 / 5);
            v.sort_unstable();
            v.dedup();
            v
        } else {
            Vec::new()
        };
        CampaignConfig {
            test: TestConfig::paper(service, kind),
            tests,
            seed: 0xC0FFEE ^ ((service as u64) << 8) ^ (kind as u64),
            between_tests: SimDuration::from_secs(between_min * 60),
            partition_tests,
            threads: 0,
            inject_panic: Vec::new(),
        }
    }

    /// Overrides the master seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A quarantined test instance: its worker panicked and the panic was
/// caught, journaled (when a journal is attached), and excluded from the
/// cell's results instead of aborting the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashedInstance {
    /// The instance index within the cell.
    pub index: u32,
    /// The seed the instance ran with.
    pub seed: u64,
    /// The captured panic message.
    pub panic: String,
}

/// The outcome of a campaign cell.
#[derive(Debug)]
pub struct CampaignResult {
    /// The configuration that produced this result.
    pub config: CampaignConfig,
    /// Per-instance results, in instance order. Quarantined crashes are
    /// excluded (see [`CampaignResult::crashed`]), so every downstream
    /// aggregation sees only tests that actually produced a trace.
    pub results: Vec<TestResult>,
    /// Instances whose worker panicked and was quarantined.
    pub crashed: Vec<CrashedInstance>,
    /// Instances spliced in from a recovered journal rather than re-run.
    pub resumed: usize,
}

impl CampaignResult {
    /// Number of completed (non-timed-out) tests.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.completed).count()
    }

    /// Total reads across all instances and agents.
    pub fn total_reads(&self) -> u64 {
        self.results.iter().map(|r| r.reads_per_agent.iter().map(|n| *n as u64).sum::<u64>()).sum()
    }

    /// Total writes across all instances.
    pub fn total_writes(&self) -> u64 {
        self.results.iter().map(|r| r.writes_total as u64).sum()
    }

    /// Mean reads per agent per test (Table I's "number of reads per agent
    /// per test (average)").
    pub fn mean_reads_per_agent(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        let per_agent: f64 = self
            .results
            .iter()
            .map(|r| {
                r.reads_per_agent.iter().map(|n| *n as f64).sum::<f64>()
                    / r.reads_per_agent.len().max(1) as f64
            })
            .sum();
        per_agent / self.results.len() as f64
    }

    /// Total simulator events (message deliveries) across all instances.
    pub fn total_sim_events(&self) -> u64 {
        self.results.iter().map(|r| r.sim_events).sum()
    }
}

/// Runs every instance of a campaign cell, in parallel.
pub fn run_campaign(config: &CampaignConfig) -> CampaignResult {
    run_campaign_with_progress(config, None)
}

/// Like [`run_campaign`], invoking `progress(done, total)` from the worker
/// that finishes each instance — callers surface completed/total and
/// tests/sec so long cells aren't silent. The callback runs concurrently
/// from multiple worker threads.
pub fn run_campaign_with_progress(
    config: &CampaignConfig,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> CampaignResult {
    run_campaign_journaled(config, progress, "", None, None)
}

/// The per-instance test configuration: the shared cell config plus the
/// instance's partition-plan flag. Public because distributed-campaign
/// workers must derive the exact same per-instance config from their own
/// copy of the cell parameters.
pub fn instance_config(config: &CampaignConfig, i: usize) -> TestConfig {
    let mut test = config.test.clone();
    test.tokyo_partition = test.tokyo_partition || config.partition_tests.contains(&(i as u32));
    test
}

/// Splices journal-recovered results into `slots` and returns how many
/// instances were recovered. A recovered record is only trusted when its
/// persisted seed matches the freshly derived one (same master seed) and
/// its payload deserializes; otherwise the instance is re-run. Crashed
/// records are deliberately *not* spliced — a resume retries them, which
/// is what makes an env-injected-panic run resume to byte-identical
/// output.
fn splice_recovered(
    config: &CampaignConfig,
    cell: &str,
    recovery: &Recovery,
    root: &SimRng,
    slots: &mut [Option<TestResult>],
) -> usize {
    let mut resumed = 0;
    for (i, (seed, payload)) in recovery.completed_for(cell) {
        let i = i as usize;
        if i >= slots.len() {
            continue;
        }
        let expect = root.split_indexed("test", i as u64).seed();
        if seed != expect {
            eprintln!(
                "journal: {cell} instance {i} recorded seed {seed:#x} but campaign derives \
                 {expect:#x}; re-running"
            );
            continue;
        }
        match result_from_json(&instance_config(config, i), payload) {
            Ok(result) => {
                slots[i] = Some(result);
                resumed += 1;
            }
            Err(e) => {
                eprintln!("journal: {cell} instance {i} payload rejected ({e}); re-running");
            }
        }
    }
    resumed
}

/// Throughput and ETA gauges for a (possibly resumed) campaign.
///
/// `finished` counts every filled slot *including* the `resumed` instances
/// spliced from a journal, but only the `finished - resumed` fresh tests
/// took wall-clock time in this process — dividing the total by this
/// process's elapsed time would report an inflated `campaign.tests_per_sec`
/// and a collapsed `campaign.eta_secs` right after a resume. The rate is
/// therefore computed over fresh completions only.
pub fn progress_rates(
    finished: usize,
    resumed: usize,
    total: usize,
    elapsed_secs: f64,
) -> (f64, f64) {
    let fresh = finished.saturating_sub(resumed) as f64;
    let rate = fresh / elapsed_secs.max(1e-9);
    let remaining = total.saturating_sub(finished) as f64;
    (rate, remaining / rate.max(1e-9))
}

/// Like [`run_campaign_with_progress`], with crash-safe durability: every
/// finished instance is appended to `journal` (when given) under the
/// `cell` identifier, and instances already present in `recovery` are
/// spliced in instead of re-run. Workers are panic-isolated: a panicking
/// instance becomes a quarantined [`CrashedInstance`] (journaled as a
/// `crashed` record) rather than aborting the campaign.
pub fn run_campaign_journaled(
    config: &CampaignConfig,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
    cell: &str,
    journal: Option<&Journal>,
    recovery: Option<&Recovery>,
) -> CampaignResult {
    let n = config.tests as usize;
    let root = SimRng::new(config.seed);
    let mut slots: Vec<Option<TestResult>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let resumed = match recovery {
        Some(r) => splice_recovered(config, cell, r, &root, &mut slots),
        None => 0,
    };
    // Only the instances the journal doesn't already cover are run.
    let pending: Vec<usize> = (0..n).filter(|&i| slots[i].is_none()).collect();
    let slots = Mutex::new(slots);
    let crashed: Mutex<Vec<CrashedInstance>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(resumed);

    // Campaign-level telemetry rides on the same sink the per-test worlds
    // use. Wall-clock only — it never feeds back into any simulation.
    let obs = config.test.obs.clone();
    let cell_span = obs.as_ref().map(|s| s.metrics.span("campaign.cell"));
    let started = std::time::Instant::now();
    let campaign_progress = |finished: usize| {
        if let Some(sink) = &obs {
            sink.metrics.counter("campaign.tests.completed").inc();
            let elapsed = started.elapsed().as_secs_f64();
            let (rate, eta) = progress_rates(finished, resumed, n, elapsed);
            sink.metrics.gauge("campaign.tests_per_sec").set(rate);
            sink.metrics.gauge("campaign.eta_secs").set(eta);
        }
    };

    let workers = if config.threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        config.threads
    }
    .min(pending.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let p = next.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = pending.get(p) else { return };
                let seed = root.split_indexed("test", i as u64).seed();
                let test = instance_config(config, i);
                // Panic isolation: a panicking instance must not poison
                // the slot mutex or tear down its sibling workers — the
                // lock is taken only *after* the test (and only for the
                // assignment), and the panic is downgraded to a
                // quarantined record.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if config.inject_panic.contains(&(i as u32)) {
                        panic!("injected panic (instance {i})");
                    }
                    run_one_test(&test, seed)
                }));
                match outcome {
                    Ok(result) => {
                        if let Some(j) = journal {
                            if let Err(e) = j.append_completed(cell, i as u32, seed, &result) {
                                eprintln!("journal: append failed for {cell} instance {i}: {e}");
                            }
                        }
                        slots.lock().unwrap_or_else(|p| p.into_inner())[i] = Some(result);
                    }
                    Err(payload) => {
                        let msg = panic_message(payload.as_ref());
                        if let Some(sink) = &obs {
                            sink.metrics.counter("campaign.tests.crashed").inc();
                            sink.log.record(
                                0,
                                Severity::Error,
                                "campaign",
                                format!("instance {i} panicked: {msg}"),
                            );
                        }
                        if let Some(j) = journal {
                            if let Err(e) = j.append_crashed(cell, i as u32, seed, &msg) {
                                eprintln!("journal: append failed for {cell} instance {i}: {e}");
                            }
                        }
                        crashed.lock().unwrap_or_else(|p| p.into_inner()).push(CrashedInstance {
                            index: i as u32,
                            seed,
                            panic: msg,
                        });
                    }
                }
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                campaign_progress(finished);
                if let Some(cb) = progress {
                    cb(finished, n);
                }
            });
        }
    });
    drop(cell_span);

    let results: Vec<TestResult> =
        slots.into_inner().unwrap_or_else(|p| p.into_inner()).into_iter().flatten().collect();
    let mut crashed = crashed.into_inner().unwrap_or_else(|p| p.into_inner());
    crashed.sort_unstable_by_key(|c| c.index);
    CampaignResult { config: config.clone(), results, crashed, resumed }
}

/// Best-effort rendering of a caught panic payload (`&str` and `String`
/// cover everything `panic!` produces in practice). Distributed-campaign
/// workers use the same rendering so a quarantined instance's journal
/// record is identical whichever process caught the panic.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conprobe_core::AnomalyKind;

    #[test]
    fn paper_config_reproduces_table_pauses() {
        let c = CampaignConfig::paper(ServiceKind::GooglePlus, TestKind::Test1, 10);
        assert_eq!(c.between_tests, SimDuration::from_secs(34 * 60));
        let c = CampaignConfig::paper(ServiceKind::Blogger, TestKind::Test2, 10);
        assert_eq!(c.between_tests, SimDuration::from_secs(10 * 60));
        let c = CampaignConfig::paper(ServiceKind::FacebookFeed, TestKind::Test1, 10);
        assert_eq!(c.between_tests, SimDuration::from_secs(5 * 60));
    }

    #[test]
    fn all_eight_cells_derive_distinct_master_seeds() {
        let services = [
            ServiceKind::GooglePlus,
            ServiceKind::Blogger,
            ServiceKind::FacebookFeed,
            ServiceKind::FacebookGroup,
        ];
        let mut seeds = std::collections::HashSet::new();
        for service in services {
            for kind in [TestKind::Test1, TestKind::Test2] {
                seeds.insert(CampaignConfig::paper(service, kind, 1).seed);
            }
        }
        assert_eq!(seeds.len(), 8, "every (service, kind) cell needs its own seed: {seeds:?}");
    }

    #[test]
    fn fbgroup_partition_plan_has_contiguous_episode() {
        let c = CampaignConfig::paper(ServiceKind::FacebookGroup, TestKind::Test2, 100);
        assert!(c.partition_tests.len() >= 5);
        // At least one run of 5 consecutive indices.
        let longest = c
            .partition_tests
            .windows(2)
            .fold((1usize, 1usize), |(best, cur), w| {
                let cur = if w[1] == w[0] + 1 { cur + 1 } else { 1 };
                (best.max(cur), cur)
            })
            .0;
        assert!(longest >= 5, "episode must be contiguous: {:?}", c.partition_tests);
        // Other services get no partitions.
        let c = CampaignConfig::paper(ServiceKind::Blogger, TestKind::Test2, 100);
        assert!(c.partition_tests.is_empty());
    }

    #[test]
    fn small_blogger_campaign_is_clean_and_ordered() {
        let mut c = CampaignConfig::paper(ServiceKind::Blogger, TestKind::Test1, 4);
        c.threads = 2;
        let out = run_campaign(&c);
        assert_eq!(out.results.len(), 4);
        assert_eq!(out.completed(), 4);
        assert_eq!(out.total_writes(), 24, "6 writes per test");
        assert!(out.results.iter().all(|r| r.analysis.is_clean()));
        assert!(out.mean_reads_per_agent() > 1.0);
        // Per-instance seeds differ.
        let seeds: std::collections::HashSet<_> = out.results.iter().map(|r| r.seed).collect();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn campaign_results_are_reproducible() {
        let mut c = CampaignConfig::paper(ServiceKind::Blogger, TestKind::Test2, 3);
        c.threads = 3;
        let a = run_campaign(&c);
        let b = run_campaign(&c);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.trace, y.trace);
        }
    }

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("conprobe-campaign-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn panicking_instance_is_quarantined_not_fatal() {
        let mut c = CampaignConfig::paper(ServiceKind::Blogger, TestKind::Test2, 4);
        c.threads = 2;
        c.inject_panic = vec![1];
        let out = run_campaign(&c);
        assert_eq!(out.results.len(), 3, "three instances survive");
        assert_eq!(out.crashed.len(), 1);
        assert_eq!(out.crashed[0].index, 1);
        assert!(out.crashed[0].panic.contains("injected panic"), "{}", out.crashed[0].panic);
        // The surviving instances are the non-panicking ones, untouched.
        let mut clean = c.clone();
        clean.inject_panic.clear();
        let full = run_campaign(&clean);
        let survivors: Vec<_> =
            full.results.iter().enumerate().filter(|(i, _)| *i != 1).map(|(_, r)| r).collect();
        for (got, want) in out.results.iter().zip(survivors) {
            assert_eq!(got.trace, want.trace);
        }
    }

    #[test]
    fn journaled_campaign_replays_entirely_from_its_own_journal() {
        let path = temp_journal("replay");
        let mut c = CampaignConfig::paper(ServiceKind::Blogger, TestKind::Test2, 3);
        c.threads = 3;
        let journal = Journal::create(&path).unwrap();
        let live = run_campaign_journaled(&c, None, "blogger/test2", Some(&journal), None);
        drop(journal);
        assert_eq!(live.resumed, 0);
        let recovery = Journal::recover(&path).unwrap();
        assert_eq!(recovery.records.len(), 3);
        assert!(recovery.tail.is_none());
        // Resume with a complete journal: nothing re-runs, results match.
        let replay = run_campaign_journaled(&c, None, "blogger/test2", None, Some(&recovery));
        assert_eq!(replay.resumed, 3);
        assert_eq!(replay.results.len(), 3);
        for (a, b) in live.results.iter().zip(&replay.results) {
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.analysis.observations, b.analysis.observations);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interrupted_campaign_resumes_to_identical_results() {
        let path = temp_journal("resume");
        let mut c = CampaignConfig::paper(ServiceKind::Blogger, TestKind::Test2, 4);
        c.threads = 1;
        // First attempt: instance 2's worker panics (stand-in for a crash
        // mid-campaign); its siblings complete and are journaled.
        let mut wounded = c.clone();
        wounded.inject_panic = vec![2];
        let journal = Journal::create(&path).unwrap();
        let first = run_campaign_journaled(&wounded, None, "blogger/test2", Some(&journal), None);
        drop(journal);
        assert_eq!(first.crashed.len(), 1);
        assert_eq!(first.results.len(), 3);
        // Resume without the injected fault: the crashed record is
        // retried, the three completed records are spliced.
        let (journal, recovery) = Journal::resume(&path).unwrap();
        let resumed =
            run_campaign_journaled(&c, None, "blogger/test2", Some(&journal), Some(&recovery));
        drop(journal);
        assert_eq!(resumed.resumed, 3);
        assert!(resumed.crashed.is_empty());
        // Byte-identical to the same campaign run uninterrupted.
        let uninterrupted = run_campaign(&c);
        assert_eq!(resumed.results.len(), uninterrupted.results.len());
        for (a, b) in resumed.results.iter().zip(&uninterrupted.results) {
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.analysis.observations, b.analysis.observations);
            assert_eq!(a.duration_secs, b.duration_secs);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn progress_rates_count_only_fresh_completions() {
        // Unresumed campaign: plain throughput.
        let (rate, eta) = progress_rates(5, 0, 10, 2.0);
        assert_eq!(rate, 2.5);
        assert_eq!(eta, 2.0);
        // Resumed campaign: 8 spliced instances took no wall-clock time
        // here, so only the 9th (fresh) completion counts toward rate.
        let (rate, eta) = progress_rates(9, 8, 10, 2.0);
        assert_eq!(rate, 0.5);
        assert_eq!(eta, 2.0);
        // Right after a resume, before any fresh completion, the rate is
        // zero rather than `resumed / epsilon`.
        let (rate, _) = progress_rates(8, 8, 10, 1e-3);
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn resumed_campaign_rate_gauge_is_not_inflated() {
        let path = temp_journal("rategauge");
        let mut c = CampaignConfig::paper(ServiceKind::Blogger, TestKind::Test2, 6);
        c.threads = 1;
        // First attempt: the last two instances panic, leaving a journal
        // with 4 of 6 completed.
        let mut wounded = c.clone();
        wounded.inject_panic = vec![4, 5];
        let journal = Journal::create(&path).unwrap();
        run_campaign_journaled(&wounded, None, "blogger/test2", Some(&journal), None);
        drop(journal);
        // Resume with a metrics sink; stall ~2 s after the first fresh
        // completion so the final gauge reading divides by a non-trivial
        // elapsed time.
        let sink = conprobe_obs::ObsSink::new();
        c.test.obs = Some(sink.clone());
        let (journal, recovery) = Journal::resume(&path).unwrap();
        let resumed_at = recovery.completed_for("blogger/test2").len();
        let slow_first_fresh = move |finished: usize, _total: usize| {
            if finished == resumed_at + 1 {
                std::thread::sleep(std::time::Duration::from_secs(2));
            }
        };
        let out = run_campaign_journaled(
            &c,
            Some(&slow_first_fresh),
            "blogger/test2",
            Some(&journal),
            Some(&recovery),
        );
        drop(journal);
        assert_eq!(out.resumed, 4);
        assert_eq!(out.results.len(), 6);
        // Two fresh tests over ≥2 s of wall clock: the honest rate is
        // ≤1 test/sec. The old computation divided all six (4 recovered
        // + 2 fresh) by the same elapsed time, reporting ~3/sec.
        let rate = sink.metrics.gauge("campaign.tests_per_sec").get();
        assert!(rate > 0.0, "rate gauge never set");
        assert!(rate < 1.5, "resumed instances inflated the rate gauge: {rate}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recovered_seed_mismatch_forces_rerun() {
        let path = temp_journal("seedmismatch");
        let mut c = CampaignConfig::paper(ServiceKind::Blogger, TestKind::Test2, 2);
        c.threads = 2;
        let journal = Journal::create(&path).unwrap();
        run_campaign_journaled(&c, None, "blogger/test2", Some(&journal), None);
        drop(journal);
        let recovery = Journal::recover(&path).unwrap();
        // A different master seed derives different instance seeds, so
        // nothing from the old journal may be spliced.
        let other = c.clone().with_seed(0xD15EA5E);
        let out = run_campaign_journaled(&other, None, "blogger/test2", None, Some(&recovery));
        assert_eq!(out.resumed, 0, "stale-seed records must be re-run");
        assert_eq!(out.results.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partitioned_instances_follow_the_plan() {
        let mut c = CampaignConfig::paper(ServiceKind::FacebookGroup, TestKind::Test2, 25);
        c.partition_tests = vec![1, 3];
        c.threads = 2;
        c.tests = 5;
        let out = run_campaign(&c);
        let flags: Vec<bool> = out.results.iter().map(|r| r.partitioned).collect();
        assert_eq!(flags, vec![false, true, false, true, false]);
        // Partitioned instances diverge; unpartitioned mostly don't.
        assert!(out.results[1].has(AnomalyKind::ContentDivergence));
        assert!(out.results[3].has(AnomalyKind::ContentDivergence));
    }
}
