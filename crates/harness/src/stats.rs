//! Campaign statistics — the quantities behind Figures 3–10.

use crate::runner::TestResult;
use conprobe_core::window::WindowKind;
use conprobe_core::{AgentId, AnomalyKind};
use std::collections::BTreeMap;

/// The paper's agent locations, in agent-index order.
pub const LOCATIONS: [&str; 3] = ["Oregon", "Tokyo", "Ireland"];

/// Short location labels ("OR", "JP", "IR").
pub const LOCATIONS_SHORT: [&str; 3] = ["OR", "JP", "IR"];

/// The three unordered agent pairs, in the paper's presentation order.
pub const PAIRS: [(u32, u32); 3] = [(0, 1), (0, 2), (1, 2)];

/// Human label for an agent pair ("OR-JP" for the paper's agents, "a3-a4"
/// beyond them).
pub fn pair_label(pair: (u32, u32)) -> String {
    let name = |i: u32| {
        LOCATIONS_SHORT.get(i as usize).map(|s| s.to_string()).unwrap_or_else(|| format!("a{i}"))
    };
    format!("{}-{}", name(pair.0), name(pair.1))
}

/// All unordered agent pairs for an `n`-agent test.
pub fn pairs(n: u32) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            out.push((a, b));
        }
    }
    out
}

/// The number of agents appearing in a result set (max agent index + 1).
pub fn agent_count(results: &[TestResult]) -> u32 {
    results.iter().map(|r| r.reads_per_agent.len() as u32).max().unwrap_or(0)
}

/// Percentage (0–100) of tests in which `kind` was observed at least once —
/// the bars of Figure 3.
pub fn prevalence(results: &[TestResult], kind: AnomalyKind) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    let hits = results.iter().filter(|r| r.analysis.has(kind)).count();
    100.0 * hits as f64 / results.len() as f64
}

/// Prevalence of every anomaly kind.
pub fn prevalence_all(results: &[TestResult]) -> BTreeMap<AnomalyKind, f64> {
    AnomalyKind::ALL.iter().map(|k| (*k, prevalence(results, *k))).collect()
}

/// Histogram buckets used in Figures 4–7: observations per test per agent.
pub const BUCKET_LABELS: [&str; 5] = ["1", "2", "3-5", "6-10", ">10"];

fn bucket_of(count: usize) -> Option<usize> {
    match count {
        0 => None,
        1 => Some(0),
        2 => Some(1),
        3..=5 => Some(2),
        6..=10 => Some(3),
        _ => Some(4),
    }
}

/// Per-location histogram of per-test observation counts (Figures 4–7
/// panels a/b): `histogram[location][bucket]` = number of tests where that
/// location's agent logged a count in that bucket.
pub fn observation_histogram(results: &[TestResult], kind: AnomalyKind) -> [[u32; 5]; 3] {
    let mut h = [[0u32; 5]; 3];
    for r in results {
        for loc in 0..3u32 {
            let count = r.analysis.count_by_agent(kind, AgentId(loc));
            if let Some(b) = bucket_of(count) {
                h[loc as usize][b] += 1;
            }
        }
    }
    h
}

/// Location-correlation breakdown (Figures 4–7 panels c/d): among tests
/// where `kind` was observed at all, the percentage observed by each exact
/// subset of locations ("OR", "JP", "IR", "OR+JP", …, "OR+JP+IR").
pub fn location_correlation(results: &[TestResult], kind: AnomalyKind) -> BTreeMap<String, f64> {
    let mut counts: BTreeMap<String, u32> = BTreeMap::new();
    let mut affected = 0u32;
    for r in results {
        let set = r.analysis.agents_observing(kind);
        if set.is_empty() {
            continue;
        }
        affected += 1;
        let label = set
            .iter()
            .map(|a| {
                LOCATIONS_SHORT
                    .get(a.0 as usize)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("a{}", a.0))
            })
            .collect::<Vec<_>>()
            .join("+");
        *counts.entry(label).or_default() += 1;
    }
    counts.into_iter().map(|(k, v)| (k, 100.0 * v as f64 / affected.max(1) as f64)).collect()
}

/// Per-pair prevalence of a divergence anomaly (Figure 8): percentage of
/// tests where the given pair diverged.
pub fn pair_prevalence(results: &[TestResult], kind: AnomalyKind) -> BTreeMap<(u32, u32), f64> {
    let mut out = BTreeMap::new();
    for pair in PAIRS {
        let hits = results
            .iter()
            .filter(|r| r.analysis.pair_has(kind, AgentId(pair.0), AgentId(pair.1)))
            .count();
        out.insert(pair, 100.0 * hits as f64 / results.len().max(1) as f64);
    }
    out
}

/// The largest divergence window (seconds) per test for one pair —
/// considering only tests where the pair diverged and re-converged, as in
/// Figures 9/10 ("only considering the largest divergence window for each
/// pair of agents in each test"; unconverged runs are excluded and counted
/// by [`nonconvergence_fraction`]).
pub fn largest_windows_secs(
    results: &[TestResult],
    kind: WindowKind,
    pair: (u32, u32),
) -> Vec<f64> {
    let mut v: Vec<f64> = results
        .iter()
        .filter_map(|r| {
            let w = r.analysis.pair_windows(kind, AgentId(pair.0), AgentId(pair.1))?;
            if !w.converged() {
                return None;
            }
            w.largest_nanos().map(|ns| ns as f64 / 1e9)
        })
        .collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v
}

/// Fraction (0–100) of *divergent* tests in which the pair never
/// re-converged before the test ended (Figure 10's exclusion percentages).
pub fn nonconvergence_fraction(results: &[TestResult], kind: WindowKind, pair: (u32, u32)) -> f64 {
    let mut divergent = 0u32;
    let mut open = 0u32;
    for r in results {
        if let Some(w) = r.analysis.pair_windows(kind, AgentId(pair.0), AgentId(pair.1)) {
            if w.any_divergence() {
                divergent += 1;
                if !w.converged() {
                    open += 1;
                }
            }
        }
    }
    100.0 * open as f64 / divergent.max(1) as f64
}

/// Evaluates an empirical CDF at the given quantiles (0–1).
pub fn quantiles(sorted: &[f64], qs: &[f64]) -> Vec<Option<f64>> {
    qs.iter()
        .map(|q| {
            if sorted.is_empty() {
                None
            } else {
                let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
                Some(sorted[idx])
            }
        })
        .collect()
}

/// Mean of a slice (0 if empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Visibility-latency summary per (writer-region, reader-region) class:
/// `local` = reader is the writer, `same_entry` = reader shares the
/// writer's service front door, `remote` = different front doors.
/// Returns `(local, same_entry, remote)` summaries.
pub fn visibility_by_locality(
    results: &[TestResult],
) -> (
    conprobe_core::VisibilitySummary,
    conprobe_core::VisibilitySummary,
    conprobe_core::VisibilitySummary,
) {
    use conprobe_core::visibility::visibility;
    let mut local = Vec::new();
    let mut same = Vec::new();
    let mut remote = Vec::new();
    for r in results {
        for rec in visibility(&r.trace) {
            if rec.reader == rec.writer {
                local.push(rec);
            } else if same_entry(r, rec.writer, rec.reader) {
                same.push(rec);
            } else {
                remote.push(rec);
            }
        }
    }
    (
        conprobe_core::visibility::summarize(&local),
        conprobe_core::visibility::summarize(&same),
        conprobe_core::visibility::summarize(&remote),
    )
}

/// Whether two agents of a test share a service front door, from the
/// per-test entry assignment the runner recorded (the affinity actually in
/// force, including rotations and the Tokyo-partition reroute).
/// Conservative default is "not shared" when an agent index is unknown.
fn same_entry(result: &TestResult, a: AgentId, b: AgentId) -> bool {
    match (result.agent_entries.get(a.0 as usize), result.agent_entries.get(b.0 as usize)) {
        (Some(ea), Some(eb)) => ea == eb,
        _ => false,
    }
}

/// Mean absolute clock-sync error per agent, in milliseconds (ablation A2).
pub fn clock_error_ms(results: &[TestResult]) -> [f64; 3] {
    let mut out = [0.0; 3];
    if results.is_empty() {
        return out;
    }
    for (i, slot) in out.iter_mut().enumerate() {
        let v: Vec<f64> = results
            .iter()
            .filter_map(|r| r.clock_error_nanos.get(i).map(|ns| *ns as f64 / 1e6))
            .collect();
        *slot = mean(&v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::TestKind;
    use crate::runner::{run_one_test, TestConfig};
    use conprobe_services::ServiceKind;

    fn blogger_results(n: u64) -> Vec<TestResult> {
        let config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test1);
        (0..n).map(|s| run_one_test(&config, s)).collect()
    }

    #[test]
    fn clean_campaign_has_zero_prevalence() {
        let results = blogger_results(3);
        for (_, p) in prevalence_all(&results) {
            assert_eq!(p, 0.0);
        }
        let h = observation_histogram(&results, AnomalyKind::ReadYourWrites);
        assert_eq!(h, [[0; 5]; 3]);
        assert!(location_correlation(&results, AnomalyKind::MonotonicReads).is_empty());
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), None);
        assert_eq!(bucket_of(1), Some(0));
        assert_eq!(bucket_of(2), Some(1));
        assert_eq!(bucket_of(3), Some(2));
        assert_eq!(bucket_of(5), Some(2));
        assert_eq!(bucket_of(6), Some(3));
        assert_eq!(bucket_of(10), Some(3));
        assert_eq!(bucket_of(11), Some(4));
    }

    #[test]
    fn quantiles_of_known_data() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let q = quantiles(&data, &[0.0, 0.5, 1.0]);
        assert_eq!(q, vec![Some(1.0), Some(3.0), Some(5.0)]);
        assert_eq!(quantiles(&[], &[0.5]), vec![None]);
    }

    #[test]
    fn pair_labels() {
        assert_eq!(pair_label((0, 1)), "OR-JP");
        assert_eq!(pair_label((1, 2)), "JP-IR");
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn pairs_enumeration() {
        assert!(pairs(0).is_empty());
        assert!(pairs(1).is_empty());
        assert_eq!(pairs(3), PAIRS.to_vec());
        assert_eq!(pairs(5).len(), 10);
    }

    #[test]
    fn visibility_by_locality_on_blogger() {
        // A strongly consistent service: everything becomes visible within
        // roughly one read period. Blogger has a single replica, so every
        // agent shares the one front door — nothing classifies as remote.
        let results = blogger_results(2);
        let (local, same, remote) = visibility_by_locality(&results);
        assert!(local.total > 0 && same.total > 0);
        assert_eq!(remote.total, 0, "one front door: no remote pairs");
        for v in [&local, &same] {
            assert_eq!(v.total, v.observed, "Blogger leaves nothing unobserved");
            assert!(v.p95_secs.expect("observed > 0") < 2.0, "within ~a read period: {v:?}");
        }
    }

    /// Front-door classification per service, from the recorded entry
    /// assignment (regression for the hardcoded (0,1) pairing that
    /// misclassified every non-Google+ service).
    #[test]
    fn same_entry_follows_each_services_front_doors() {
        use conprobe_core::AgentId;
        let run = |service| {
            let config = TestConfig::paper(service, TestKind::Test1);
            run_one_test(&config, 11)
        };

        // Blogger: one replica, all three agents share it.
        let r = run(ServiceKind::Blogger);
        for (a, b) in [(0, 1), (0, 2), (1, 2)] {
            assert!(same_entry(&r, AgentId(a), AgentId(b)), "Blogger shares its only door");
        }

        // Google+: Oregon and Tokyo enter via DC-West; Ireland is its own.
        let r = run(ServiceKind::GooglePlus);
        assert!(same_entry(&r, AgentId(0), AgentId(1)), "OR+JP share DC-West");
        assert!(!same_entry(&r, AgentId(0), AgentId(2)));
        assert!(!same_entry(&r, AgentId(1), AgentId(2)));

        // FB Feed: one replica per agent region — nobody shares.
        let r = run(ServiceKind::FacebookFeed);
        for (a, b) in [(0, 1), (0, 2), (1, 2)] {
            assert!(!same_entry(&r, AgentId(a), AgentId(b)), "FB Feed: distinct doors");
        }

        // FB Group: everyone enters through the main (Virginia) replica...
        let r = run(ServiceKind::FacebookGroup);
        for (a, b) in [(0, 1), (0, 2), (1, 2)] {
            assert!(same_entry(&r, AgentId(a), AgentId(b)), "FB Group: one main door");
        }
        // ...except when the Tokyo partition reroutes the Tokyo agent.
        let mut config = TestConfig::paper(ServiceKind::FacebookGroup, TestKind::Test2);
        config.tokyo_partition = true;
        let r = run_one_test(&config, 3);
        assert!(!same_entry(&r, AgentId(0), AgentId(1)), "rerouted Tokyo agent");
        assert!(same_entry(&r, AgentId(0), AgentId(2)));

        // Unknown agent indices classify conservatively as not shared.
        assert!(!same_entry(&r, AgentId(0), AgentId(9)));
    }

    #[test]
    fn agent_count_reads_result_shape() {
        let results = blogger_results(1);
        assert_eq!(agent_count(&results), 3);
        assert_eq!(agent_count(&[]), 0);
    }

    #[test]
    fn clock_error_is_finite_and_small() {
        let results = blogger_results(2);
        let errs = clock_error_ms(&results);
        for e in errs {
            assert!(e.is_finite());
            // Half the worst RTT is ~110 ms; drift adds a little.
            assert!(e < 200.0, "clock error {e} ms too large");
        }
    }
}
