//! Study scheduling — the paper's month-long campaign calendar.
//!
//! §V: *"For each of the services, we deployed the various agents for a
//! total period of roughly 30 days per service (for running both tests).
//! For each service, we alternated between running each of the two test
//! types roughly every four days … Due to rate limits, after a test
//! instance finishes, we had to wait for a fixed period of time before
//! starting a new one."*
//!
//! [`StudyPlan`] captures that calendar; [`plan_counts`] computes how many
//! instances of each test fit (using a pilot run to estimate per-instance
//! duration, since Test 1's duration is emergent), and [`run_study`]
//! executes a scaled version of the whole study. This is both a faithful
//! orchestration layer and a sanity check on the paper's own arithmetic:
//! ~30 days at the reported pauses yields test counts of the same order as
//! Tables I–II.

use crate::campaign::{run_campaign, CampaignConfig, CampaignResult};
use crate::proto::TestKind;
use crate::runner::{run_one_test, TestConfig};
use conprobe_services::ServiceKind;
use conprobe_sim::SimDuration;

/// The calendar of one service's study.
#[derive(Debug, Clone)]
pub struct StudyPlan {
    /// Service under study.
    pub service: ServiceKind,
    /// Length of one alternation block (the paper: 4 days).
    pub block: SimDuration,
    /// Total study duration (the paper: ~30 days).
    pub total: SimDuration,
    /// Pause after each Test 1 instance (Table I).
    pub pause_test1: SimDuration,
    /// Pause after each Test 2 instance (Table II).
    pub pause_test2: SimDuration,
}

impl StudyPlan {
    /// The paper's calendar for `service`: 4-day blocks over 30 days, with
    /// Table I/II pauses.
    pub fn paper(service: ServiceKind) -> Self {
        let t1 = CampaignConfig::paper(service, TestKind::Test1, 1);
        let t2 = CampaignConfig::paper(service, TestKind::Test2, 1);
        StudyPlan {
            service,
            block: SimDuration::from_secs(4 * 86_400),
            total: SimDuration::from_secs(30 * 86_400),
            pause_test1: t1.between_tests,
            pause_test2: t2.between_tests,
        }
    }

    /// Wall-clock share of the study spent on each test type (alternating
    /// equal blocks ⇒ half each, modulo the final partial block).
    pub fn time_per_kind(&self) -> (SimDuration, SimDuration) {
        let blocks = self.total.as_nanos() / self.block.as_nanos().max(1);
        let t1_blocks = blocks.div_ceil(2);
        let t2_blocks = blocks / 2;
        let remainder =
            SimDuration::from_nanos(self.total.as_nanos() - blocks * self.block.as_nanos());
        let t1 = SimDuration::from_nanos(t1_blocks * self.block.as_nanos())
            + if blocks.is_multiple_of(2) { remainder } else { SimDuration::ZERO };
        let t2 = SimDuration::from_nanos(t2_blocks * self.block.as_nanos())
            + if !blocks.is_multiple_of(2) { remainder } else { SimDuration::ZERO };
        (t1, t2)
    }
}

/// Estimated instance counts for a plan, from measured per-test durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedCounts {
    /// Test 1 instances that fit in the calendar.
    pub test1: u32,
    /// Test 2 instances that fit.
    pub test2: u32,
}

/// Runs `pilots` instances of each test to estimate mean durations, then
/// computes how many instances fit the plan's calendar.
pub fn plan_counts(plan: &StudyPlan, pilots: u32, seed: u64) -> PlannedCounts {
    let mean_duration = |kind: TestKind| -> f64 {
        let config = TestConfig::paper(plan.service, kind);
        let total: f64 = (0..pilots.max(1))
            .map(|i| run_one_test(&config, seed ^ (i as u64) << 32).duration_secs)
            .sum();
        total / pilots.max(1) as f64
    };
    let (t1_time, t2_time) = plan.time_per_kind();
    let per1 = mean_duration(TestKind::Test1) + plan.pause_test1.as_secs_f64();
    let per2 = mean_duration(TestKind::Test2) + plan.pause_test2.as_secs_f64();
    PlannedCounts {
        test1: (t1_time.as_secs_f64() / per1) as u32,
        test2: (t2_time.as_secs_f64() / per2) as u32,
    }
}

/// The outcome of a (scaled) study run.
#[derive(Debug)]
pub struct StudyOutcome {
    /// What the full calendar would have run.
    pub planned: PlannedCounts,
    /// The scale factor applied (1 = full study).
    pub scale: f64,
    /// Test 1 results.
    pub test1: CampaignResult,
    /// Test 2 results.
    pub test2: CampaignResult,
}

/// Plans and executes the study at `scale` (e.g. `0.05` runs 5 % of the
/// planned instances — the full paper-scale study is ~2,000 instances).
///
/// # Panics
///
/// Panics if `scale` is not within `(0, 1]`.
pub fn run_study(plan: &StudyPlan, scale: f64, seed: u64) -> StudyOutcome {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let planned = plan_counts(plan, 2, seed);
    let n1 = ((planned.test1 as f64 * scale) as u32).max(1);
    let n2 = ((planned.test2 as f64 * scale) as u32).max(1);
    let test1 =
        run_campaign(&CampaignConfig::paper(plan.service, TestKind::Test1, n1).with_seed(seed));
    let test2 = run_campaign(
        &CampaignConfig::paper(plan.service, TestKind::Test2, n2).with_seed(seed ^ 0x5EED),
    );
    StudyOutcome { planned, scale, test1, test2 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_uses_table_pauses() {
        let plan = StudyPlan::paper(ServiceKind::GooglePlus);
        assert_eq!(plan.pause_test1, SimDuration::from_secs(34 * 60));
        assert_eq!(plan.pause_test2, SimDuration::from_secs(17 * 60));
        assert_eq!(plan.block.as_millis(), 4 * 86_400_000);
    }

    #[test]
    fn time_split_is_roughly_half_half() {
        let plan = StudyPlan::paper(ServiceKind::Blogger);
        let (t1, t2) = plan.time_per_kind();
        assert_eq!(t1 + t2, plan.total);
        // 30/4 = 7.5 blocks → 4 blocks test1, 3 blocks test2 + remainder.
        assert_eq!(t1.as_nanos(), 4 * plan.block.as_nanos());
        assert_eq!(t2.as_nanos(), 3 * plan.block.as_nanos() + plan.block.as_nanos() / 2);
    }

    #[test]
    fn planned_counts_land_in_the_papers_order_of_magnitude() {
        // The real check on the paper's arithmetic: its calendar and pauses
        // must produce counts in the hundreds-to-low-thousands per cell.
        for service in [ServiceKind::GooglePlus, ServiceKind::FacebookFeed] {
            let plan = StudyPlan::paper(service);
            let counts = plan_counts(&plan, 1, 7);
            assert!((200..5_000).contains(&counts.test1), "{service} test1: {counts:?}");
            assert!((200..20_000).contains(&counts.test2), "{service} test2: {counts:?}");
        }
    }

    #[test]
    fn scaled_study_runs_both_cells() {
        let plan = StudyPlan::paper(ServiceKind::Blogger);
        let outcome = run_study(&plan, 0.003, 11);
        assert!(outcome.planned.test1 > 0);
        assert!(!outcome.test1.results.is_empty());
        assert!(!outcome.test2.results.is_empty());
        assert_eq!(outcome.scale, 0.003);
        // Blogger stays clean at study scale too.
        assert!(outcome.test1.results.iter().all(|r| r.analysis.is_clean()));
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn run_study_validates_scale() {
        let plan = StudyPlan::paper(ServiceKind::Blogger);
        let _ = run_study(&plan, 0.0, 1);
    }
}
