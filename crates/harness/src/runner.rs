//! Single-test execution: build a world, run it, analyze the trace.

use crate::agent::{AgentNode, RpcStats};
use crate::coordinator::{AgentHealth, CoordinatorConfig, CoordinatorNode};
use crate::proto::{test1_trigger_pairs, Msg, TestKind};
use conprobe_core::checkers::WfrMode;
use conprobe_core::{analyze, CheckerConfig, TestAnalysis, TestTrace};
use conprobe_services::fault_driver::{ExecutedAction, FaultDriver};
use conprobe_services::{deploy, ServiceCluster, ServiceKind};
use conprobe_sim::net::{PartitionSpec, Region};
use conprobe_sim::{
    ClockConfig, FaultEvent, FaultNetStats, FaultPlan, NodeId, ObsSink, SimDuration, SimTime,
    World, WorldConfig,
};
use conprobe_store::PostId;

/// Configuration of one test instance.
#[derive(Debug, Clone)]
pub struct TestConfig {
    /// The service under test.
    pub service: ServiceKind,
    /// Which of the paper's two tests to run.
    pub kind: TestKind,
    /// Background read period (Tables I/II: 300 ms everywhere).
    pub read_period: SimDuration,
    /// Test 2: number of fast reads before the 1-second period (Table II).
    pub fast_reads: u32,
    /// Test 2: slow read period (Table II: 1 s).
    pub slow_period: SimDuration,
    /// Test 2: per-agent read quota (Table II).
    pub reads_target: u32,
    /// Clock probes per agent before the test.
    pub probes_per_agent: u32,
    /// Margin between clock sync and the synchronized start.
    pub start_margin: SimDuration,
    /// Abort the test after this long.
    pub max_duration: SimDuration,
    /// Clock distribution of the measurement machines (NTP disabled).
    pub agent_clocks: ClockConfig,
    /// Cut the Tokyo-side replica off from the rest of the service for the
    /// whole test (the transient fault the paper infers for FB Group).
    pub tokyo_partition: bool,
    /// Run agents behind a `conprobe-session` guard (extension A3).
    pub use_guard: bool,
    /// Deploy this topology instead of the service's calibrated preset
    /// (ablations).
    pub service_override: Option<conprobe_services::catalog::Topology>,
    /// Message-loss probability applied to every network link (failure
    /// injection; the harness retries, replicas deduplicate, anti-entropy
    /// repairs).
    pub link_loss: f64,
    /// Rotate agent roles across locations: agent index `i` is deployed in
    /// region `AGENTS[(i + rotation) % 3]`. The paper used this to confirm
    /// that Ireland's lower anomaly multiplicity in Test 1 is an artifact
    /// of being the *last* writer, not of the location itself.
    pub rotation: u32,
    /// Probe every replica's authoritative state at this period (white-box
    /// extension; adds a [`crate::whitebox::WhiteboxReport`] to the result).
    pub whitebox_period: Option<SimDuration>,
    /// Crash one replica mid-test (fault injection): volatile state is
    /// lost, requests go unanswered until recovery, anti-entropy repairs
    /// the state afterwards. Legacy shorthand — merged into
    /// [`TestConfig::fault_plan`] as a one-cycle
    /// [`FaultEvent::CrashCycle`] at run time.
    pub crash_fault: Option<CrashFault>,
    /// Declarative fault script executed against the world and the service
    /// (link flaps, loss bursts, degraded links, crash cycles, brownouts).
    /// The resulting interference is accounted in
    /// [`TestResult::fault_ledger`].
    pub fault_plan: FaultPlan,
    /// Agent deployment regions, in agent-index order. The paper's three
    /// (Oregon, Tokyo, Ireland) by default; any count ≥ 2 works — Test 1's
    /// message naming, trigger chain and completion condition generalize
    /// (agent *i* writes M(2i+1), M(2i+2); completion is the last agent's
    /// second message).
    pub agent_regions: Vec<Region>,
    /// Observability sink installed into the test's world (metrics under
    /// `sim.`/`services.`/`harness.`, plus the structured event log).
    /// `None` (the default) runs with telemetry off; either way the
    /// simulation schedule is identical.
    pub obs: Option<ObsSink>,
}

/// A scheduled replica crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFault {
    /// Index into the service's replica list.
    pub replica: usize,
    /// Crash this long after the world starts.
    pub at: SimDuration,
    /// Recover this long after the crash.
    pub down_for: SimDuration,
}

impl TestConfig {
    /// The paper's configuration for `service`/`kind` (Tables I and II).
    ///
    /// Read periods are 300 ms everywhere. Test 2's adaptive schedule and
    /// read quotas come from Table II (Google+ 17–75 reads — we use the
    /// upper range since its windows are the longest; Blogger 20; FB Feed
    /// 40; FB Group 50). `max_duration` is sized so that a healthy test
    /// always completes (Test 1 ends when M6 is globally visible).
    pub fn paper(service: ServiceKind, kind: TestKind) -> Self {
        let (fast_reads, reads_target) = match service {
            ServiceKind::GooglePlus => (14, 60),
            ServiceKind::Blogger => (13, 20),
            ServiceKind::FacebookFeed => (20, 40),
            ServiceKind::FacebookGroup => (20, 50),
            // The quorum control arm is not in the paper's tables; the
            // quota is sized so a Test 2 run outlasts the chaos plan's
            // crash/recover cycle (crash at 7 s, 4 s down) and exercises
            // post-recovery reads.
            ServiceKind::Quorum => (14, 30),
            // Same sizing argument for the ordered-log arm: outlast the
            // leader-crash cycle so view change, rejoin state transfer
            // and post-recovery reads all land inside the run.
            ServiceKind::Pbft => (14, 30),
        };
        TestConfig {
            service,
            kind,
            read_period: SimDuration::from_millis(300),
            fast_reads,
            slow_period: SimDuration::from_secs(1),
            reads_target,
            probes_per_agent: 5,
            start_margin: SimDuration::from_secs(1),
            max_duration: match kind {
                TestKind::Test1 => SimDuration::from_secs(180),
                TestKind::Test2 => SimDuration::from_secs(120),
            },
            agent_clocks: ClockConfig::default(),
            tokyo_partition: false,
            use_guard: false,
            service_override: None,
            link_loss: 0.0,
            rotation: 0,
            whitebox_period: None,
            crash_fault: None,
            fault_plan: FaultPlan::default(),
            agent_regions: Region::AGENTS.to_vec(),
            obs: None,
        }
    }

    /// The fault plan actually executed: [`TestConfig::fault_plan`] plus
    /// the legacy [`TestConfig::crash_fault`] folded in as a one-cycle
    /// crash.
    pub fn effective_fault_plan(&self) -> FaultPlan {
        let mut plan = self.fault_plan.clone();
        if let Some(fault) = self.crash_fault {
            plan.push(FaultEvent::CrashCycle {
                target: fault.replica,
                at: SimTime::ZERO + fault.at,
                down_for: fault.down_for,
                up_for: SimDuration::ZERO,
                cycles: 1,
            });
        }
        plan
    }
}

/// The checker configuration [`run_one_test`] analyzes a test of this
/// configuration with. Exposed so journal recovery
/// ([`crate::journal`]) can re-derive a byte-identical
/// [`TestAnalysis`] from a persisted trace: the analysis is a pure
/// function of `(trace, checker config)`, so it is *recomputed* on
/// resume rather than serialized.
pub fn checker_config_for(config: &TestConfig) -> CheckerConfig<PostId> {
    match config.kind {
        TestKind::Test1 => CheckerConfig {
            wfr_mode: WfrMode::TriggerPairs(test1_trigger_pairs(config.agent_regions.len() as u32)),
            compute_windows: true,
        },
        TestKind::Test2 => CheckerConfig::default(),
    }
}

/// Everything a test's fault plan did to the run: network interference
/// counters, the executed service transitions, and how hard each agent's
/// RPC layer had to work to get through.
#[derive(Debug, Clone, Default)]
pub struct FaultLedger {
    /// Messages blocked/dropped/delayed by the plan's network effects.
    pub net: FaultNetStats,
    /// Service transitions (crash/recover/brownout) in firing order.
    pub actions: Vec<ExecutedAction>,
    /// Plan actions dropped for naming a replica the topology lacks.
    pub skipped_actions: usize,
    /// Per-agent transport counters (retransmits, abandonments,
    /// throttles).
    pub agent_rpc: Vec<RpcStats>,
}

impl FaultLedger {
    /// True when the plan interfered with the run in any visible way.
    pub fn any_interference(&self) -> bool {
        self.net.total() > 0 || !self.actions.is_empty()
    }
}

/// Everything measured in one test instance.
#[derive(Debug, Clone)]
pub struct TestResult {
    /// The checker output.
    pub analysis: TestAnalysis<PostId>,
    /// The merged clock-corrected trace.
    pub trace: TestTrace<PostId>,
    /// Whether the test reached its completion condition (vs timed out).
    pub completed: bool,
    /// Reads logged per agent.
    pub reads_per_agent: Vec<u32>,
    /// Total writes logged.
    pub writes_total: u32,
    /// Test duration in (coordinator-perceived) seconds.
    pub duration_secs: f64,
    /// Whether the Tokyo partition was active.
    pub partitioned: bool,
    /// Per-agent absolute error of the estimated clock delta vs ground
    /// truth (nanoseconds) — the clock-sync ablation input.
    pub clock_error_nanos: Vec<i64>,
    /// Per-agent half-RTT uncertainty claimed by the estimator.
    pub clock_uncertainty_nanos: Vec<i64>,
    /// The region each agent index was deployed in (varies with
    /// [`TestConfig::rotation`]).
    pub agent_regions: Vec<Region>,
    /// Replica-level ground truth, when white-box probing was enabled.
    pub whitebox: Option<crate::whitebox::WhiteboxReport>,
    /// What the fault plan did to the run.
    pub fault_ledger: FaultLedger,
    /// Per-agent liveness accounting from the coordinator.
    pub agent_health: Vec<AgentHealth>,
    /// The trace is a coherent partial view: one or more agents were
    /// quarantined and contributed nothing.
    pub salvaged: bool,
    /// The seed this test ran with.
    pub seed: u64,
    /// Simulator events (message deliveries) processed during the run —
    /// the denominator for `conprobe-bench`'s events/sec metric.
    pub sim_events: u64,
    /// The service this test ran against.
    pub service: ServiceKind,
    /// The service front door each agent index was routed to (the
    /// affinity actually in force, including any Tokyo-partition
    /// reroute) — the ground truth for same-entry vs remote visibility
    /// classification.
    pub agent_entries: Vec<NodeId>,
}

impl TestResult {
    /// Shorthand: does the analysis contain this anomaly?
    pub fn has(&self, kind: conprobe_core::AnomalyKind) -> bool {
        self.analysis.has(kind)
    }
}

/// Builds the world for one test and runs it to completion.
///
/// Returns the analyzed result. Each call constructs a fresh world (fresh
/// service state, fresh clocks), which matches the paper's per-test
/// isolation: anomaly detection only ever involves the test's own messages.
///
/// # Panics
///
/// Panics if the simulation exceeds its event budget without the
/// coordinator finishing — that indicates a harness bug, not an anomaly.
pub fn run_one_test(config: &TestConfig, seed: u64) -> TestResult {
    let mut matrix = conprobe_sim::LatencyMatrix::paper_wan();
    if config.link_loss > 0.0 {
        matrix = matrix.with_loss_everywhere(config.link_loss);
    }
    let fault_plan = config.effective_fault_plan();
    let mut net = conprobe_sim::net::NetworkConfig::new(matrix);
    net.effects = fault_plan.network_effects();
    net.fault_seed = fault_plan.seed();
    let world_config = WorldConfig { net, clocks: config.agent_clocks.clone() };
    let mut world: World<Msg> = World::new(world_config, seed);
    // Install telemetry before any node exists so every `on_start` sees it.
    let test_span = config.obs.as_ref().map(|sink| {
        world.install_obs(sink.clone());
        sink.metrics.counter("harness.tests.started").inc();
        sink.metrics.span("harness.test")
    });

    // Service first (replica node ids are deterministic: 0..n).
    let mut cluster: ServiceCluster = match &config.service_override {
        Some(topo) => {
            conprobe_services::catalog::deploy_topology(&mut world, config.service, topo.clone())
        }
        None => deploy(&mut world, config.service),
    };
    if config.tokyo_partition {
        add_tokyo_partition(&mut world, &mut cluster, config);
    }

    // Agents (the paper's three regions by default; any count works).
    let n_agents = config.agent_regions.len() as u32;
    assert!(n_agents >= 2, "a consistency test needs at least two agents");
    let mut agents = Vec::new();
    let mut entries = Vec::new();
    for i in 0..n_agents {
        let region = config.agent_regions[((i + config.rotation) % n_agents) as usize];
        let id = world.add_node(region, Box::new(AgentNode::new(i, config.use_guard)));
        entries.push(cluster.entry_for(region));
        agents.push(id);
    }
    let agent_entries = entries.clone();

    // Coordinator in North Virginia.
    let coord_cfg = CoordinatorConfig {
        agents: agents.clone(),
        entries,
        kind: config.kind,
        probes_per_agent: config.probes_per_agent,
        probe_spacing: SimDuration::from_millis(50),
        start_margin: config.start_margin,
        max_duration: config.max_duration,
        read_period: config.read_period,
        fast_reads: config.fast_reads,
        slow_period: config.slow_period,
        reads_target: config.reads_target,
    };
    let coord = world.add_node(Region::Virginia, Box::new(CoordinatorNode::new(coord_cfg)));

    // One driver executes the whole service-level half of the fault plan.
    let fault_driver = (!fault_plan.is_empty()).then(|| {
        world.add_node(
            Region::Virginia,
            Box::new(FaultDriver::new(&fault_plan, cluster.replicas.clone())),
        )
    });

    // Optional white-box probe, co-located with the coordinator.
    let probe = config.whitebox_period.map(|period| {
        world.add_node(
            Region::Virginia,
            Box::new(crate::whitebox::WhiteboxProbe::new(cluster.replicas.clone(), period)),
        )
    });

    drive(&mut world, coord);
    let sim_events = world.delivered();

    let outcome = world
        .node_as::<CoordinatorNode>(coord)
        .and_then(|c| c.outcome().cloned())
        .expect("coordinator finished");
    if let Some(sink) = &config.obs {
        let m = &sink.metrics;
        if outcome.completed {
            m.counter("harness.tests.completed").inc();
        } else {
            m.counter("harness.tests.timed_out").inc();
        }
        if outcome.salvaged {
            m.counter("harness.tests.salvaged").inc();
        }
    }
    drop(test_span); // closes the wall-clock harness.test span

    // Clock-sync ablation: compare estimates against ground truth.
    let now = world.now();
    let coord_true = world.clock_of(coord).true_offset_nanos(now);
    let mut clock_error = Vec::new();
    let mut clock_uncertainty = Vec::new();
    for (i, agent) in agents.iter().enumerate() {
        let agent_true = world.clock_of(*agent).true_offset_nanos(now);
        let true_delta = agent_true - coord_true;
        clock_error.push((outcome.deltas[i].delta_nanos - true_delta).abs());
        clock_uncertainty.push(outcome.deltas[i].uncertainty_nanos);
    }

    let analysis = analyze(&outcome.trace, &checker_config_for(config));

    let reads_per_agent = (0..n_agents)
        .map(|i| outcome.trace.reads_by(conprobe_core::AgentId(i)).len() as u32)
        .collect();

    let agent_regions = agents.iter().map(|id| world.region_of(*id)).collect();
    let (actions, skipped_actions) = fault_driver
        .and_then(|d| world.node_as::<FaultDriver>(d))
        .map(|d| (d.log().to_vec(), d.skipped()))
        .unwrap_or_default();
    let fault_ledger = FaultLedger {
        net: world.fault_stats(),
        actions,
        skipped_actions,
        agent_rpc: agents
            .iter()
            .map(|id| world.node_as::<AgentNode>(*id).map(|a| a.rpc_stats()).unwrap_or_default())
            .collect(),
    };
    let whitebox = probe.map(|p| {
        let node = world.node_as::<crate::whitebox::WhiteboxProbe>(p).expect("probe node exists");
        crate::whitebox::WhiteboxReport::from_samples(node.samples(), cluster.replicas.len())
    });
    TestResult {
        agent_regions,
        whitebox,
        reads_per_agent,
        writes_total: outcome.trace.write_count() as u32,
        duration_secs: outcome.duration_nanos as f64 / 1e9,
        completed: outcome.completed,
        partitioned: config.tokyo_partition,
        clock_error_nanos: clock_error,
        clock_uncertainty_nanos: clock_uncertainty,
        trace: outcome.trace,
        analysis,
        fault_ledger,
        agent_health: outcome.agent_health,
        salvaged: outcome.salvaged,
        seed,
        sim_events,
        service: config.service,
        agent_entries,
    }
}

/// Models the paper's transient Tokyo fault: the Tokyo agent is rerouted to
/// the Tokyo-side replica (normally idle for Facebook Group), which is cut
/// off from the rest of the service for the first part of the test. The
/// Tokyo agent keeps reaching its own front door — it simply "was unable to
/// observe the operations of other agents" — and once the partition heals,
/// anti-entropy repairs the divergence, closing the window.
fn add_tokyo_partition(world: &mut World<Msg>, cluster: &mut ServiceCluster, config: &TestConfig) {
    if cluster.replicas.len() < 2 {
        return; // single-replica service: nothing to cut
    }
    let tokyo_idx = cluster.replicas.len() - 1;
    cluster.affinity.assign(Region::Tokyo, tokyo_idx);
    let tokyo_replica = cluster.replicas[tokyo_idx];
    let others: Vec<NodeId> =
        cluster.replicas.iter().copied().filter(|r| *r != tokyo_replica).collect();
    // Clock sync + start margin take a few seconds; the partition covers
    // the start of the measured phase and heals mid-test.
    let heal_at = SimTime::ZERO + config.start_margin + SimDuration::from_secs(10);
    world.add_partition(PartitionSpec {
        side_a: vec![tokyo_replica],
        side_b: others,
        start: SimTime::ZERO,
        end: heal_at,
    });
}

/// Steps the world until the coordinator publishes its outcome.
fn drive(world: &mut World<Msg>, coord: NodeId) {
    // Generous budget: a long Test 2 is ~200k events.
    for _ in 0..50_000_000u64 {
        let done =
            world.node_as::<CoordinatorNode>(coord).map(|c| c.outcome().is_some()).unwrap_or(false);
        if done {
            return;
        }
        assert!(world.step(), "world drained before the coordinator finished");
    }
    panic!("event budget exhausted before the coordinator finished");
}

#[cfg(test)]
mod tests {
    use super::*;
    use conprobe_core::AnomalyKind;

    #[test]
    fn blogger_test1_completes_cleanly() {
        let config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test1);
        let r = run_one_test(&config, 1);
        assert!(r.completed, "Blogger Test 1 must complete");
        assert_eq!(r.writes_total, 6, "M1..M6");
        assert!(
            r.analysis.is_clean(),
            "Blogger shows no anomalies: {:?}",
            r.analysis.observations.first()
        );
        assert!(r.reads_per_agent.iter().all(|n| *n >= 2));
    }

    #[test]
    fn blogger_test2_completes_with_quota() {
        let config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test2);
        let r = run_one_test(&config, 2);
        assert!(r.completed);
        assert_eq!(r.writes_total, 3, "one write per agent");
        for n in &r.reads_per_agent {
            assert_eq!(*n, config.reads_target, "each agent reads its quota");
        }
    }

    #[test]
    fn results_are_deterministic() {
        let config = TestConfig::paper(ServiceKind::FacebookGroup, TestKind::Test1);
        let a = run_one_test(&config, 7);
        let b = run_one_test(&config, 7);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.duration_secs, b.duration_secs);
    }

    #[test]
    fn fbgroup_test1_shows_monotonic_writes_reversal() {
        let config = TestConfig::paper(ServiceKind::FacebookGroup, TestKind::Test1);
        // MW appears in most but not all tests; check across a few seeds.
        let hits =
            (0..5).filter(|s| run_one_test(&config, *s).has(AnomalyKind::MonotonicWrites)).count();
        assert!(hits >= 3, "FB Group same-second reversal should dominate, got {hits}/5");
    }

    #[test]
    fn fbgroup_partition_causes_content_divergence_and_timeout() {
        let mut config = TestConfig::paper(ServiceKind::FacebookGroup, TestKind::Test2);
        config.tokyo_partition = true;
        let r = run_one_test(&config, 3);
        assert!(r.partitioned);
        assert!(r.has(AnomalyKind::ContentDivergence), "a partitioned Tokyo replica must diverge");
    }

    #[test]
    fn clock_error_is_within_claimed_uncertainty_scale() {
        let config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test2);
        let r = run_one_test(&config, 4);
        for (err, unc) in r.clock_error_nanos.iter().zip(&r.clock_uncertainty_nanos) {
            // Error ≤ uncertainty + drift slack (clocks drift between sync
            // and measurement; allow 3× for the ±50 ppm default).
            assert!(*err <= unc * 3 + 20_000_000, "clock error {err} vs uncertainty {unc}");
        }
    }

    #[test]
    fn guarded_agents_mask_session_anomalies() {
        let mut config = TestConfig::paper(ServiceKind::FacebookGroup, TestKind::Test1);
        config.use_guard = true;
        let r = run_one_test(&config, 5);
        assert!(!r.has(AnomalyKind::MonotonicWrites), "guard restores write order");
        assert!(!r.has(AnomalyKind::MonotonicReads));
        assert!(!r.has(AnomalyKind::ReadYourWrites));
    }
}
