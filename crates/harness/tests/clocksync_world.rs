//! End-to-end clock synchronization over the simulated WAN: the
//! coordinator's estimates must recover known clock offsets within the
//! paper's half-RTT uncertainty bound.

use conprobe_harness::agent::AgentNode;
use conprobe_harness::coordinator::{CoordinatorConfig, CoordinatorNode};
use conprobe_harness::proto::{Msg, TestKind};
use conprobe_sim::net::Region;
use conprobe_sim::{LocalClock, SimDuration, SimTime, World, WorldConfig};

/// Builds a world with a coordinator and three agents with explicit clock
/// offsets (no drift), runs until deltas are computed, and returns the
/// estimates.
fn sync_world(offsets_ms: [i64; 3]) -> Vec<i64> {
    let mut world: World<Msg> = World::new(WorldConfig::default(), 9);
    // A dummy "service" node so agents have an entry in their plan (the
    // test never reaches the running phase deeply; Blogger-style default).
    let service = world.add_node_with_clock(
        Region::Virginia,
        LocalClock::perfect(),
        Box::new(conprobe_services::ReplicaNode::new(Default::default())),
    );
    let mut agents = Vec::new();
    for (i, region) in Region::AGENTS.into_iter().enumerate() {
        let clock = LocalClock::new(offsets_ms[i] * 1_000_000, 0.0);
        let id =
            world.add_node_with_clock(region, clock, Box::new(AgentNode::new(i as u32, false)));
        agents.push(id);
    }
    let coord = world.add_node_with_clock(
        Region::Virginia,
        LocalClock::perfect(),
        Box::new(CoordinatorNode::new(CoordinatorConfig {
            agents: agents.clone(),
            entries: vec![service; 3],
            kind: TestKind::Test2,
            probes_per_agent: 5,
            probe_spacing: SimDuration::from_millis(50),
            start_margin: SimDuration::from_secs(1),
            max_duration: SimDuration::from_secs(30),
            read_period: SimDuration::from_millis(300),
            fast_reads: 2,
            slow_period: SimDuration::from_secs(1),
            reads_target: 2,
        })),
    );
    // Run until probing completes (deltas become available).
    world.run_while(|w| {
        w.node_as::<CoordinatorNode>(coord).map(|c| c.deltas().is_empty()).unwrap_or(true)
            && w.now() < SimTime::from_secs(20)
    });
    let c = world.node_as::<CoordinatorNode>(coord).unwrap();
    assert_eq!(c.deltas().len(), 3, "probing must finish");
    // Check the claimed uncertainty while we're here.
    for (i, d) in c.deltas().iter().enumerate() {
        let rtt_bound_ms = [136i64, 218, 172][i]; // paper RTTs coordinator↔agent
        assert!(
            d.uncertainty_nanos <= rtt_bound_ms * 1_000_000,
            "claimed uncertainty exceeds the full RTT"
        );
    }
    c.deltas().iter().map(|d| d.delta_nanos).collect()
}

#[test]
fn recovers_positive_and_negative_offsets() {
    let offsets = [1500i64, -2000, 0];
    let deltas = sync_world(offsets);
    for (i, (est, true_ms)) in deltas.iter().zip(offsets).enumerate() {
        let err_ms = (est - true_ms * 1_000_000).abs() / 1_000_000;
        // Paper bound: half the RTT (68/109/86 ms); jitter keeps actual
        // error far below.
        let bound = [68i64, 109, 86][i];
        assert!(
            err_ms <= bound,
            "agent {i}: estimate error {err_ms}ms exceeds half-RTT bound {bound}ms"
        );
    }
}

#[test]
fn estimates_are_deterministic_per_seed() {
    let a = sync_world([300, 700, -100]);
    let b = sync_world([300, 700, -100]);
    assert_eq!(a, b);
}

#[test]
fn zero_offsets_give_near_zero_deltas() {
    let deltas = sync_world([0, 0, 0]);
    for d in deltas {
        assert!(d.abs() < 30_000_000, "near-zero offset should estimate ~0, got {d}ns");
    }
}
