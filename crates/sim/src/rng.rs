//! Deterministic, splittable randomness.
//!
//! All stochastic behaviour in the simulator (latency jitter, loss, ranking
//! noise, clock offsets, …) flows from a [`SimRng`]. A `SimRng` can be
//! *split* with a textual label, producing an independent child stream whose
//! seed is a hash of the parent seed and the label. Splitting keeps streams
//! stable: adding a new consumer with a fresh label does not perturb the
//! values any existing consumer sees, which keeps regression tests meaningful
//! as the simulator grows.
//!
//! The generator is an in-repo xoshiro256++ (public-domain algorithm by
//! Blackman & Vigna), state-seeded via splitmix64 — no external crates, and
//! byte-identical output on every platform.

use std::ops::{Range, RangeInclusive};

/// A deterministic random stream.
///
/// Wraps an xoshiro256++ engine and adds labelled splitting.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // splitmix64 stream expansion, the canonical xoshiro seeding.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        SimRng { seed, state }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// The child seed depends only on the parent *seed* and the label, not on
    /// how many values were already drawn from the parent, so split order is
    /// irrelevant.
    pub fn split(&self, label: &str) -> SimRng {
        SimRng::new(mix(self.seed, label))
    }

    /// Derives an independent child stream identified by a label and an
    /// index (convenient for per-node or per-test streams).
    pub fn split_indexed(&self, label: &str, index: u64) -> SimRng {
        SimRng::new(mix(self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15), label))
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            // Consume a draw anyway so the stream advances uniformly.
            let _ = self.gen_unit();
            return false;
        }
        self.gen_unit() < p
    }

    /// Samples a uniform `f64` in `[0, 1)`.
    pub fn gen_unit(&mut self) -> f64 {
        // 53 random mantissa bits → uniform on [0, 1).
        (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples from an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or not finite.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean >= 0.0, "mean must be finite and non-negative");
        if mean == 0.0 {
            return 0.0;
        }
        let u: f64 = self.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Samples from a normal distribution via the Box–Muller transform.
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = self.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.gen_unit();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.gen_range(0..slice.len());
            Some(&slice[i])
        }
    }

    /// Samples a raw `u64` (one step of xoshiro256++).
    pub fn gen_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, n)` via 128-bit widening multiply.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.gen_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Range shapes [`SimRng::gen_range`] accepts — half-open and inclusive
/// ranges over the integer and float types the simulator samples.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample(self, rng: &mut SimRng) -> T;
}

macro_rules! uint_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                match (hi - lo).checked_add(1) {
                    Some(span) => lo + rng.below(span as u64) as $t,
                    None => rng.gen_u64() as $t, // full-width range
                }
            }
        }
    )*};
}

uint_range_impls!(u32, u64, usize);

impl SampleRange<i64> for Range<i64> {
    fn sample(self, rng: &mut SimRng) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl SampleRange<i64> for RangeInclusive<i64> {
    fn sample(self, rng: &mut SimRng) -> i64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        match (hi.wrapping_sub(lo) as u64).checked_add(1) {
            Some(span) => lo.wrapping_add(rng.below(span) as i64),
            None => rng.gen_u64() as i64, // full-width range
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut SimRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.gen_unit() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut SimRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.gen_unit() * (hi - lo)
    }
}

/// Mixes a seed with a label via an FNV-1a-style hash, then finalizes with a
/// splitmix64 round for avalanche.
fn mix(seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // splitmix64 finalizer
    h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.gen_u64() == b.gen_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_independent_of_draw_position() {
        let parent = SimRng::new(99);
        let mut parent2 = SimRng::new(99);
        let _ = parent2.gen_u64(); // advance
        let mut c1 = parent.split("net");
        let mut c2 = parent2.split("net");
        assert_eq!(c1.gen_u64(), c2.gen_u64());
    }

    #[test]
    fn split_labels_differ() {
        let parent = SimRng::new(99);
        assert_ne!(parent.split("a").gen_u64(), parent.split("b").gen_u64());
        assert_ne!(parent.split_indexed("n", 0).gen_u64(), parent.split_indexed("n", 1).gen_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = r.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&g));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
        // Degenerate inclusive range.
        assert_eq!(r.gen_range(7u64..=7), 7);
        assert_eq!(r.gen_range(-2i64..=-2), -2);
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "bucket count {c}");
        }
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut r = SimRng::new(4);
        for _ in 0..10_000 {
            let u = r.gen_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::new(5);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.gen_exp(10.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean was {mean}");
        assert_eq!(r.gen_exp(0.0), 0.0);
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = SimRng::new(6);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gen_normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.3, "var was {var}");
    }

    #[test]
    fn bool_probability() {
        let mut r = SimRng::new(8);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
        assert!(!r.gen_bool(-1.0));
        assert!(r.gen_bool(2.0));
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let mut r = SimRng::new(9);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        let v = [1, 2, 3];
        assert!(v.contains(r.choose(&v).unwrap()));
    }
}
