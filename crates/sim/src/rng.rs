//! Deterministic, splittable randomness.
//!
//! All stochastic behaviour in the simulator (latency jitter, loss, ranking
//! noise, clock offsets, …) flows from a [`SimRng`]. A `SimRng` can be
//! *split* with a textual label, producing an independent child stream whose
//! seed is a hash of the parent seed and the label. Splitting keeps streams
//! stable: adding a new consumer with a fresh label does not perturb the
//! values any existing consumer sees, which keeps regression tests meaningful
//! as the simulator grows.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random stream.
///
/// Wraps [`rand::rngs::StdRng`] (ChaCha-based, portable across platforms)
/// and adds labelled splitting.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng { seed, inner: StdRng::seed_from_u64(seed) }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// The child seed depends only on the parent *seed* and the label, not on
    /// how many values were already drawn from the parent, so split order is
    /// irrelevant.
    pub fn split(&self, label: &str) -> SimRng {
        SimRng::new(mix(self.seed, label))
    }

    /// Derives an independent child stream identified by a label and an
    /// index (convenient for per-node or per-test streams).
    pub fn split_indexed(&self, label: &str, index: u64) -> SimRng {
        SimRng::new(mix(self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15), label))
    }

    /// Samples a value uniformly from `range`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Samples a uniform `f64` in `[0, 1)`.
    pub fn gen_unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Samples from an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or not finite.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean >= 0.0, "mean must be finite and non-negative");
        if mean == 0.0 {
            return 0.0;
        }
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Samples from a normal distribution via the Box–Muller transform.
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.inner.gen_range(0..slice.len());
            Some(&slice[i])
        }
    }

    /// Samples a raw `u64`.
    pub fn gen_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

/// Mixes a seed with a label via an FNV-1a-style hash, then finalizes with a
/// splitmix64 round for avalanche.
fn mix(seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // splitmix64 finalizer
    h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.gen_u64() == b.gen_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_independent_of_draw_position() {
        let parent = SimRng::new(99);
        let mut parent2 = SimRng::new(99);
        let _ = parent2.gen_u64(); // advance
        let mut c1 = parent.split("net");
        let mut c2 = parent2.split("net");
        assert_eq!(c1.gen_u64(), c2.gen_u64());
    }

    #[test]
    fn split_labels_differ() {
        let parent = SimRng::new(99);
        assert_ne!(parent.split("a").gen_u64(), parent.split("b").gen_u64());
        assert_ne!(
            parent.split_indexed("n", 0).gen_u64(),
            parent.split_indexed("n", 1).gen_u64()
        );
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::new(5);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.gen_exp(10.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean was {mean}");
        assert_eq!(r.gen_exp(0.0), 0.0);
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = SimRng::new(6);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gen_normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.3, "var was {var}");
    }

    #[test]
    fn bool_probability() {
        let mut r = SimRng::new(8);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
        assert!(!r.gen_bool(-1.0));
        assert!(r.gen_bool(2.0));
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let mut r = SimRng::new(9);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        let v = [1, 2, 3];
        assert!(v.contains(r.choose(&v).unwrap()));
    }
}
