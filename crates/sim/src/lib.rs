//! # conprobe-sim — deterministic discrete-event simulation substrate
//!
//! This crate provides the virtual world in which the `conprobe` measurement
//! study runs. The original paper ("Characterizing the Consistency of Online
//! Services", DSN 2016) deployed agents on Amazon EC2 instances in Oregon,
//! Tokyo and Ireland, plus a coordinator in North Virginia, all talking to
//! live web services over the WAN. None of those services still exposes the
//! APIs the paper used, so this crate substitutes a *discrete-event
//! simulator*: nodes exchange messages over a latency-modelled network, own
//! drifting local clocks, and are driven by a single deterministic event
//! loop.
//!
//! The simulator is intentionally service-agnostic: it knows nothing about
//! posts, feeds or consistency. Higher layers (`conprobe-store`,
//! `conprobe-services`, `conprobe-harness`) build replicated services and
//! measurement agents out of [`Node`] implementations.
//!
//! ## Design highlights
//!
//! * **Determinism** — every run is a pure function of the configuration and
//!   a 64-bit seed. The event heap breaks timestamp ties with a monotonically
//!   increasing sequence number, and all randomness flows from [`SimRng`],
//!   which supports labelled splitting so that adding a consumer does not
//!   perturb unrelated streams.
//! * **Opaque clocks** — nodes cannot read true simulation time; they only
//!   see their [`clock::LocalClock`], which has a fixed offset and a drift
//!   rate. This forces the harness to implement the paper's Cristian-style
//!   clock synchronization for real, and lets tests quantify its error.
//! * **WAN model** — [`net::LatencyMatrix`] captures one-way delays with
//!   jitter between [`net::Region`]s, seeded from the RTTs the paper
//!   measured (136 ms Virginia–Oregon, 218 ms Virginia–Tokyo, 172 ms
//!   Virginia–Ireland), plus message loss and scheduled partitions.
//!
//! ## Example
//!
//! ```
//! use conprobe_sim::{World, WorldConfig, Node, Context, NodeId, SimDuration};
//! use conprobe_sim::net::Region;
//!
//! struct Ping { peer: Option<NodeId>, got: u32 }
//! impl Node<u32> for Ping {
//!     fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
//!         if let Some(p) = self.peer { ctx.send(p, 1); }
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
//!         self.got += msg;
//!         if msg < 3 { ctx.send(from, msg + 1); }
//!     }
//!     fn on_timer(&mut self, _: &mut Context<'_, u32>, _: u64) {}
//! }
//!
//! let mut world = World::new(WorldConfig::default(), 42);
//! let a = world.add_node(Region::Oregon, Box::new(Ping { peer: None, got: 0 }));
//! let b = world.add_node(Region::Tokyo, Box::new(Ping { peer: Some(a), got: 0 }));
//! # let _ = b;
//! world.run_until_idle();
//! assert!(world.now() > conprobe_sim::SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod faults;
pub mod net;
pub mod rng;
pub mod time;
pub mod world;

pub use clock::{ClockConfig, LocalClock, LocalTime};
pub use faults::{
    BrownoutMode, EffectKind, FaultEvent, FaultNetStats, FaultPlan, LinkEffect, LinkScope,
    ServiceAction, ServiceActionKind,
};
pub use net::{LatencyMatrix, LinkSpec, NetworkConfig, PartitionSpec, Region};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use world::{Context, Node, NodeId, SimEvent, SimEventKind, World, WorldConfig};

/// Re-export of the observability sink so downstream crates can install
/// and share one without depending on `conprobe-obs` directly.
pub use conprobe_obs::ObsSink;
