//! Declarative, composable fault plans.
//!
//! A [`FaultPlan`] is a timed script of [`FaultEvent`]s — link flaps, loss
//! bursts, degraded links, replica crash/restart cycles, front-door
//! brownouts — that can be attached to a simulated world. The plan is pure
//! data: it compiles into
//!
//! * **network effects** ([`FaultPlan::network_effects`]) — region-scoped
//!   [`LinkEffect`] windows that [`crate::world::World`] consults on every
//!   send, using a dedicated `"faults"` random stream (so an empty plan
//!   leaves every existing random stream untouched and replays remain
//!   byte-identical);
//! * **service actions** ([`FaultPlan::service_actions`]) — a time-sorted
//!   list of crash/recover/brownout transitions against abstract target
//!   indices, which a deployment layer (that knows the real node ids) turns
//!   into control messages.
//!
//! Everything is deterministic: the same seed and plan produce the same
//! fault timeline, drop decisions and delay samples on every run.

use crate::net::Region;
use crate::time::{SimDuration, SimTime};
use conprobe_json::{member, FromJson, JsonError, JsonValue};
use std::fmt;

/// Which links a network-level fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkScope {
    /// Every link in the world, including intra-region ones.
    All,
    /// Links between the two regions, in both directions.
    Between(Region, Region),
    /// Every link with at least one endpoint in the region.
    Touching(Region),
}

impl LinkScope {
    /// Whether a message between regions `a` and `b` is covered.
    pub fn covers(&self, a: Region, b: Region) -> bool {
        match self {
            LinkScope::All => true,
            LinkScope::Between(x, y) => (a == *x && b == *y) || (a == *y && b == *x),
            LinkScope::Touching(r) => a == *r || b == *r,
        }
    }
}

/// What an active [`LinkEffect`] does to covered traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EffectKind {
    /// Drop every covered message (a hard outage).
    Block,
    /// Drop each covered message with this probability.
    Loss(f64),
    /// Add `base + Exp(jitter_mean)` of extra one-way delay.
    ExtraDelay {
        /// Minimum extra delay.
        base: SimDuration,
        /// Mean of the exponential tail added on top of `base`.
        jitter_mean: SimDuration,
    },
}

/// One compiled network-fault window: during `[start, end)`, traffic
/// covered by `scope` suffers `kind`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkEffect {
    /// The links affected.
    pub scope: LinkScope,
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// The fault behaviour while active.
    pub kind: EffectKind,
}

impl LinkEffect {
    /// Whether this effect applies to an `a → b` message sent at `at`.
    pub fn applies(&self, a: Region, b: Region, at: SimTime) -> bool {
        at >= self.start && at < self.end && self.scope.covers(a, b)
    }
}

/// How a browned-out front door mistreats client requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrownoutMode {
    /// Answer every client request with a throttle rejection — the
    /// "`Throttled`-storm" failure mode of an overloaded rate limiter.
    ThrottleStorm,
    /// Hold every client request for this long before serving it.
    Delay(SimDuration),
}

/// One timed fault in a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// The covered links flap: starting at `at`, they go down for
    /// `down_for`, come back up for `up_for`, and repeat `flaps` times.
    LinkFlap {
        /// The links affected.
        scope: LinkScope,
        /// First outage start.
        at: SimTime,
        /// Outage length per flap.
        down_for: SimDuration,
        /// Healthy gap between consecutive outages.
        up_for: SimDuration,
        /// Number of down/up cycles.
        flaps: u32,
    },
    /// A burst of heavy random loss on the covered links.
    LossBurst {
        /// The links affected.
        scope: LinkScope,
        /// Burst start.
        at: SimTime,
        /// Burst length.
        duration: SimDuration,
        /// Per-message drop probability during the burst.
        loss: f64,
    },
    /// A latency spike: covered links gain `extra_base + Exp(extra_jitter)`
    /// of one-way delay.
    DegradedLink {
        /// The links affected.
        scope: LinkScope,
        /// Degradation start.
        at: SimTime,
        /// Degradation length.
        duration: SimDuration,
        /// Minimum extra one-way delay.
        extra_base: SimDuration,
        /// Mean of the exponential extra jitter.
        extra_jitter: SimDuration,
    },
    /// A service target crashes and restarts repeatedly: `cycles` rounds of
    /// down `down_for`, then up `up_for`, starting at `at`.
    CrashCycle {
        /// Abstract target index (resolved against the deployed replica
        /// list by the layer that executes the plan).
        target: usize,
        /// First crash instant.
        at: SimTime,
        /// Downtime per cycle.
        down_for: SimDuration,
        /// Uptime between recoveries and the next crash.
        up_for: SimDuration,
        /// Number of crash/restart rounds.
        cycles: u32,
    },
    /// A front-door brownout: the target mistreats client requests per
    /// `mode` for the duration of the window.
    Brownout {
        /// Abstract target index.
        target: usize,
        /// Brownout start.
        at: SimTime,
        /// Brownout length.
        duration: SimDuration,
        /// The misbehaviour.
        mode: BrownoutMode,
    },
}

/// A service-level state transition compiled from a plan, to be executed
/// against target `target` at time `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceAction {
    /// Abstract target index.
    pub target: usize,
    /// When the transition happens.
    pub at: SimTime,
    /// The transition.
    pub action: ServiceActionKind,
}

/// The service-level transitions a plan can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceActionKind {
    /// Crash the target (volatile state lost).
    Crash,
    /// Restart the target with empty state.
    Recover,
    /// Begin a brownout in the given mode.
    BrownoutStart(BrownoutMode),
    /// End the brownout.
    BrownoutEnd,
}

impl fmt::Display for ServiceActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceActionKind::Crash => f.write_str("crash"),
            ServiceActionKind::Recover => f.write_str("recover"),
            ServiceActionKind::BrownoutStart(BrownoutMode::ThrottleStorm) => {
                f.write_str("brownout(throttle-storm)")
            }
            ServiceActionKind::BrownoutStart(BrownoutMode::Delay(d)) => {
                write!(f, "brownout(delay {d})")
            }
            ServiceActionKind::BrownoutEnd => f.write_str("brownout-end"),
        }
    }
}

/// Network-fault counters accumulated by a world (part of the fault
/// ledger): how many messages a plan's effects blocked, probabilistically
/// dropped, or delayed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultNetStats {
    /// Messages dropped by a [`EffectKind::Block`] window.
    pub blocked: u64,
    /// Messages dropped by a [`EffectKind::Loss`] sample.
    pub dropped: u64,
    /// Messages that picked up [`EffectKind::ExtraDelay`].
    pub delayed: u64,
}

impl FaultNetStats {
    /// Total messages the plan interfered with.
    pub fn total(&self) -> u64 {
        self.blocked + self.dropped + self.delayed
    }
}

/// A deterministic script of composable fault events.
///
/// Build one with [`FaultPlan::new`] and the [`FaultPlan::with`] builder,
/// then hand it to the harness (or compile it yourself via
/// [`FaultPlan::network_effects`] / [`FaultPlan::service_actions`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// An empty plan. `seed` feeds the world's dedicated fault random
    /// stream, so two plans with the same events but different seeds make
    /// different (but individually reproducible) drop/delay decisions.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, events: Vec::new() }
    }

    /// Builder-style event append.
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.push(event);
        self
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics if a loss probability is outside `[0, 1]`.
    pub fn push(&mut self, event: FaultEvent) {
        if let FaultEvent::LossBurst { loss, .. } = event {
            assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        }
        self.events.push(event);
    }

    /// The plan's fault-stream seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Compiles the network-level events into [`LinkEffect`] windows.
    pub fn network_effects(&self) -> Vec<LinkEffect> {
        let mut out = Vec::new();
        for ev in &self.events {
            match *ev {
                FaultEvent::LinkFlap { scope, at, down_for, up_for, flaps } => {
                    let period = down_for + up_for;
                    for k in 0..flaps as u64 {
                        let start = at + period.saturating_mul(k);
                        out.push(LinkEffect {
                            scope,
                            start,
                            end: start + down_for,
                            kind: EffectKind::Block,
                        });
                    }
                }
                FaultEvent::LossBurst { scope, at, duration, loss } => {
                    out.push(LinkEffect {
                        scope,
                        start: at,
                        end: at + duration,
                        kind: EffectKind::Loss(loss),
                    });
                }
                FaultEvent::DegradedLink { scope, at, duration, extra_base, extra_jitter } => {
                    out.push(LinkEffect {
                        scope,
                        start: at,
                        end: at + duration,
                        kind: EffectKind::ExtraDelay {
                            base: extra_base,
                            jitter_mean: extra_jitter,
                        },
                    });
                }
                FaultEvent::CrashCycle { .. } | FaultEvent::Brownout { .. } => {}
            }
        }
        out
    }

    /// Compiles the service-level events into a time-sorted action list
    /// (stable under equal times, so composition order breaks ties).
    pub fn service_actions(&self) -> Vec<ServiceAction> {
        let mut out = Vec::new();
        for ev in &self.events {
            match *ev {
                FaultEvent::CrashCycle { target, at, down_for, up_for, cycles } => {
                    let period = down_for + up_for;
                    for k in 0..cycles as u64 {
                        let crash_at = at + period.saturating_mul(k);
                        out.push(ServiceAction {
                            target,
                            at: crash_at,
                            action: ServiceActionKind::Crash,
                        });
                        out.push(ServiceAction {
                            target,
                            at: crash_at + down_for,
                            action: ServiceActionKind::Recover,
                        });
                    }
                }
                FaultEvent::Brownout { target, at, duration, mode } => {
                    out.push(ServiceAction {
                        target,
                        at,
                        action: ServiceActionKind::BrownoutStart(mode),
                    });
                    out.push(ServiceAction {
                        target,
                        at: at + duration,
                        action: ServiceActionKind::BrownoutEnd,
                    });
                }
                FaultEvent::LinkFlap { .. }
                | FaultEvent::LossBurst { .. }
                | FaultEvent::DegradedLink { .. } => {}
            }
        }
        out.sort_by_key(|a| a.at);
        out
    }

    /// Compiles a Cloud-Uptime-Archive-style outage-shape document into
    /// a fault plan, so chaos sweeps replay *measured* production
    /// incidents instead of synthetic flaps.
    ///
    /// Expected shape — a `seed` plus a list of timed incidents:
    ///
    /// ```json
    /// {"seed": 42, "incidents": [
    ///   {"kind": "partition", "start_ms": 4000, "duration_ms": 2000,
    ///    "regions": ["tokyo", "ireland"], "flaps": 2, "gap_ms": 1500},
    ///   {"kind": "loss",      "start_ms": 4000, "duration_ms": 9000,
    ///    "severity": 0.25},
    ///   {"kind": "degraded",  "start_ms": 5000, "duration_ms": 8000,
    ///    "regions": ["tokyo"], "extra_ms": 80, "jitter_ms": 20},
    ///   {"kind": "outage",    "start_ms": 7000, "duration_ms": 4000,
    ///    "target": 1},
    ///   {"kind": "brownout",  "start_ms": 8000, "duration_ms": 5000,
    ///    "target": 0, "mode": "throttle"}
    /// ]}
    /// ```
    ///
    /// `regions` scopes network incidents: absent or empty means every
    /// link, one region means every link touching it, two means the
    /// link between them. `severity` is the loss probability; an
    /// `outage` is one crash/restart cycle of the target replica; a
    /// `brownout` mode is `"throttle"` or `{"delay_ms": N}`. `flaps`
    /// (default 1) repeats a partition with `gap_ms` of healthy time
    /// between outages.
    pub fn from_outage_trace(json: &str) -> Result<FaultPlan, JsonError> {
        let doc = conprobe_json::parse(json)?;
        let seed = u64::from_json(member(&doc, "seed")?)?;
        let mut plan = FaultPlan::new(seed);
        let JsonValue::Array(incidents) = member(&doc, "incidents")? else {
            return Err(JsonError::schema("`incidents` must be an array"));
        };
        for incident in incidents {
            let kind = String::from_json(member(incident, "kind")?)?;
            let at = SimTime::from_nanos(
                u64::from_json(member(incident, "start_ms")?)?.saturating_mul(1_000_000),
            );
            let duration =
                SimDuration::from_millis(u64::from_json(member(incident, "duration_ms")?)?);
            match kind.as_str() {
                "partition" => {
                    let flaps = match incident.get("flaps") {
                        Some(v) => u32::from_json(v)?,
                        None => 1,
                    };
                    let up_for = SimDuration::from_millis(match incident.get("gap_ms") {
                        Some(v) => u64::from_json(v)?,
                        None => 0,
                    });
                    plan.push(FaultEvent::LinkFlap {
                        scope: incident_scope(incident)?,
                        at,
                        down_for: duration,
                        up_for,
                        flaps,
                    });
                }
                "loss" => {
                    let loss = f64::from_json(member(incident, "severity")?)?;
                    if !(0.0..=1.0).contains(&loss) {
                        return Err(JsonError::schema("`severity` must be a probability"));
                    }
                    plan.push(FaultEvent::LossBurst {
                        scope: incident_scope(incident)?,
                        at,
                        duration,
                        loss,
                    });
                }
                "degraded" => {
                    let extra = u64::from_json(member(incident, "extra_ms")?)?;
                    let jitter = match incident.get("jitter_ms") {
                        Some(v) => u64::from_json(v)?,
                        None => 0,
                    };
                    plan.push(FaultEvent::DegradedLink {
                        scope: incident_scope(incident)?,
                        at,
                        duration,
                        extra_base: SimDuration::from_millis(extra),
                        extra_jitter: SimDuration::from_millis(jitter),
                    });
                }
                "outage" => {
                    plan.push(FaultEvent::CrashCycle {
                        target: usize::from_json(member(incident, "target")?)?,
                        at,
                        down_for: duration,
                        up_for: SimDuration::ZERO,
                        cycles: 1,
                    });
                }
                "brownout" => {
                    let mode = match member(incident, "mode")? {
                        JsonValue::Str(s) if s == "throttle" => BrownoutMode::ThrottleStorm,
                        v => BrownoutMode::Delay(SimDuration::from_millis(u64::from_json(
                            member(v, "delay_ms")?,
                        )?)),
                    };
                    plan.push(FaultEvent::Brownout {
                        target: usize::from_json(member(incident, "target")?)?,
                        at,
                        duration,
                        mode,
                    });
                }
                other => return Err(JsonError::schema(format!("unknown incident kind `{other}`"))),
            }
        }
        Ok(plan)
    }

    /// The instant after which the plan schedules nothing (the latest
    /// window end / last action time); [`SimTime::ZERO`] for an empty plan.
    pub fn end_time(&self) -> SimTime {
        let net = self.network_effects().into_iter().map(|e| e.end);
        let svc = self.service_actions().into_iter().map(|a| a.at);
        net.chain(svc).max().unwrap_or(SimTime::ZERO)
    }
}

/// Parses an incident's optional `regions` list into a [`LinkScope`].
fn incident_scope(incident: &JsonValue) -> Result<LinkScope, JsonError> {
    let Some(regions) = incident.get("regions") else {
        return Ok(LinkScope::All);
    };
    let JsonValue::Array(items) = regions else {
        return Err(JsonError::schema("`regions` must be an array"));
    };
    let mut parsed = Vec::with_capacity(items.len());
    for item in items {
        let name = String::from_json(item)?;
        parsed.push(match name.to_ascii_lowercase().as_str() {
            "oregon" => Region::Oregon,
            "tokyo" => Region::Tokyo,
            "ireland" => Region::Ireland,
            "virginia" => Region::Virginia,
            other => return Err(JsonError::schema(format!("unknown region `{other}`"))),
        });
    }
    match parsed.as_slice() {
        [] => Ok(LinkScope::All),
        [one] => Ok(LinkScope::Touching(*one)),
        [a, b] => Ok(LinkScope::Between(*a, *b)),
        _ => Err(JsonError::schema("`regions` takes at most two entries")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_coverage() {
        let or = Region::Oregon;
        let jp = Region::Tokyo;
        let ir = Region::Ireland;
        assert!(LinkScope::All.covers(or, jp));
        assert!(LinkScope::Between(or, jp).covers(jp, or), "symmetric");
        assert!(!LinkScope::Between(or, jp).covers(or, ir));
        assert!(LinkScope::Touching(jp).covers(or, jp));
        assert!(LinkScope::Touching(jp).covers(jp, jp));
        assert!(!LinkScope::Touching(jp).covers(or, ir));
    }

    #[test]
    fn link_flap_compiles_to_block_windows() {
        let plan = FaultPlan::new(1).with(FaultEvent::LinkFlap {
            scope: LinkScope::All,
            at: SimTime::from_secs(10),
            down_for: SimDuration::from_secs(2),
            up_for: SimDuration::from_secs(3),
            flaps: 3,
        });
        let effects = plan.network_effects();
        assert_eq!(effects.len(), 3);
        for (k, e) in effects.iter().enumerate() {
            assert_eq!(e.kind, EffectKind::Block);
            assert_eq!(e.start, SimTime::from_secs(10 + 5 * k as u64));
            assert_eq!(e.end, SimTime::from_secs(12 + 5 * k as u64));
        }
        // Windows are end-exclusive and scoped.
        assert!(effects[0].applies(Region::Oregon, Region::Tokyo, SimTime::from_secs(10)));
        assert!(!effects[0].applies(Region::Oregon, Region::Tokyo, SimTime::from_secs(12)));
        assert_eq!(plan.end_time(), SimTime::from_secs(22));
    }

    #[test]
    fn crash_cycle_compiles_to_paired_actions() {
        let plan = FaultPlan::new(1).with(FaultEvent::CrashCycle {
            target: 1,
            at: SimTime::from_secs(5),
            down_for: SimDuration::from_secs(1),
            up_for: SimDuration::from_secs(4),
            cycles: 2,
        });
        let actions = plan.service_actions();
        assert_eq!(actions.len(), 4);
        assert_eq!(actions[0].action, ServiceActionKind::Crash);
        assert_eq!(actions[0].at, SimTime::from_secs(5));
        assert_eq!(actions[1].action, ServiceActionKind::Recover);
        assert_eq!(actions[1].at, SimTime::from_secs(6));
        assert_eq!(actions[2].at, SimTime::from_secs(10));
        assert_eq!(actions[3].at, SimTime::from_secs(11));
        assert!(actions.iter().all(|a| a.target == 1));
    }

    #[test]
    fn brownout_compiles_to_start_end_pair() {
        let plan = FaultPlan::new(1).with(FaultEvent::Brownout {
            target: 0,
            at: SimTime::from_secs(3),
            duration: SimDuration::from_secs(7),
            mode: BrownoutMode::ThrottleStorm,
        });
        let actions = plan.service_actions();
        assert_eq!(
            actions[0].action,
            ServiceActionKind::BrownoutStart(BrownoutMode::ThrottleStorm)
        );
        assert_eq!(actions[1].action, ServiceActionKind::BrownoutEnd);
        assert_eq!(actions[1].at, SimTime::from_secs(10));
        assert_eq!(plan.end_time(), SimTime::from_secs(10));
    }

    #[test]
    fn composed_plans_interleave_actions_in_time_order() {
        let plan = FaultPlan::new(9)
            .with(FaultEvent::Brownout {
                target: 0,
                at: SimTime::from_secs(8),
                duration: SimDuration::from_secs(4),
                mode: BrownoutMode::Delay(SimDuration::from_millis(500)),
            })
            .with(FaultEvent::CrashCycle {
                target: 1,
                at: SimTime::from_secs(9),
                down_for: SimDuration::from_secs(1),
                up_for: SimDuration::ZERO,
                cycles: 1,
            })
            .with(FaultEvent::LossBurst {
                scope: LinkScope::All,
                at: SimTime::from_secs(1),
                duration: SimDuration::from_secs(2),
                loss: 0.5,
            });
        let actions = plan.service_actions();
        let times: Vec<u64> = actions.iter().map(|a| a.at.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "actions are time-sorted");
        assert_eq!(actions.len(), 4);
        assert_eq!(plan.network_effects().len(), 1);
        assert!(!plan.is_empty());
        assert_eq!(plan.seed(), 9);
    }

    #[test]
    fn empty_plan_compiles_to_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(plan.network_effects().is_empty());
        assert!(plan.service_actions().is_empty());
        assert_eq!(plan.end_time(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn loss_burst_validates_probability() {
        let _ = FaultPlan::new(0).with(FaultEvent::LossBurst {
            scope: LinkScope::All,
            at: SimTime::ZERO,
            duration: SimDuration::from_secs(1),
            loss: 1.5,
        });
    }

    #[test]
    fn outage_trace_compiles_to_a_plan() {
        let trace = r#"{"seed": 42, "incidents": [
            {"kind": "partition", "start_ms": 4000, "duration_ms": 2000,
             "regions": ["tokyo", "ireland"], "flaps": 2, "gap_ms": 1500},
            {"kind": "loss", "start_ms": 4000, "duration_ms": 9000, "severity": 0.25},
            {"kind": "degraded", "start_ms": 5000, "duration_ms": 8000,
             "regions": ["Tokyo"], "extra_ms": 80, "jitter_ms": 20},
            {"kind": "outage", "start_ms": 7000, "duration_ms": 4000, "target": 1},
            {"kind": "brownout", "start_ms": 8000, "duration_ms": 5000,
             "target": 0, "mode": "throttle"},
            {"kind": "brownout", "start_ms": 9000, "duration_ms": 1000,
             "target": 0, "mode": {"delay_ms": 40}}
        ]}"#;
        let plan = FaultPlan::from_outage_trace(trace).expect("well-formed trace");
        assert_eq!(plan.seed(), 42);

        let effects = plan.network_effects();
        // Two flap windows + one loss window + one degraded window.
        assert_eq!(effects.len(), 4);
        assert_eq!(effects[0].kind, EffectKind::Block);
        assert_eq!(effects[0].scope, LinkScope::Between(Region::Tokyo, Region::Ireland));
        assert_eq!(effects[0].start, SimTime::from_secs(4));
        assert_eq!(effects[0].end, SimTime::from_secs(6));
        assert_eq!(effects[1].start, SimTime::from_millis(7500), "gap_ms spaces the flaps");
        assert_eq!(effects[2].kind, EffectKind::Loss(0.25));
        assert_eq!(effects[2].scope, LinkScope::All);
        assert_eq!(
            effects[3].kind,
            EffectKind::ExtraDelay {
                base: SimDuration::from_millis(80),
                jitter_mean: SimDuration::from_millis(20),
            }
        );
        assert_eq!(effects[3].scope, LinkScope::Touching(Region::Tokyo));

        let actions = plan.service_actions();
        // Crash + recover + two brownout start/end pairs.
        assert_eq!(actions.len(), 6);
        let crash = actions.iter().find(|a| a.action == ServiceActionKind::Crash).unwrap();
        assert_eq!((crash.target, crash.at), (1, SimTime::from_secs(7)));
        let recover = actions.iter().find(|a| a.action == ServiceActionKind::Recover).unwrap();
        assert_eq!(recover.at, SimTime::from_secs(11));
        assert!(actions.iter().any(|a| {
            a.action
                == ServiceActionKind::BrownoutStart(BrownoutMode::Delay(SimDuration::from_millis(
                    40,
                )))
        }));
    }

    #[test]
    fn outage_trace_rejects_malformed_documents() {
        let cases = [
            ("[1, 2]", "missing member `seed`"),
            (r#"{"seed": 1, "incidents": 3}"#, "must be an array"),
            (
                r#"{"seed": 1, "incidents": [{"kind": "meteor", "start_ms": 0, "duration_ms": 1}]}"#,
                "unknown incident kind",
            ),
            (
                r#"{"seed": 1, "incidents": [{"kind": "loss", "start_ms": 0,
                   "duration_ms": 1, "severity": 1.5}]}"#,
                "probability",
            ),
            (
                r#"{"seed": 1, "incidents": [{"kind": "partition", "start_ms": 0,
                   "duration_ms": 1, "regions": ["atlantis"]}]}"#,
                "unknown region",
            ),
            (
                r#"{"seed": 1, "incidents": [{"kind": "partition", "start_ms": 0,
                   "duration_ms": 1, "regions": ["oregon", "tokyo", "ireland"]}]}"#,
                "at most two",
            ),
        ];
        for (doc, needle) in cases {
            let err = FaultPlan::from_outage_trace(doc).expect_err(doc);
            assert!(err.to_string().contains(needle), "{doc}: {err}");
        }
    }

    #[test]
    fn outage_trace_empty_regions_means_every_link() {
        let trace = r#"{"seed": 7, "incidents": [
            {"kind": "loss", "start_ms": 0, "duration_ms": 1000,
             "severity": 0.1, "regions": []}
        ]}"#;
        let plan = FaultPlan::from_outage_trace(trace).expect("well-formed trace");
        assert_eq!(plan.network_effects()[0].scope, LinkScope::All);
    }
}
