//! The deterministic event loop: nodes, messages, timers.
//!
//! A [`World`] owns a set of [`Node`]s, each placed in a [`Region`] and
//! equipped with a [`LocalClock`]. Nodes interact with the world only through
//! the [`Context`] handed to their callbacks: they can send messages (which
//! arrive after a sampled network delay, or never, if lost or partitioned),
//! set timers, read their local clock, and draw from a private random
//! stream. The loop pops events in `(time, sequence)` order, so runs are
//! exactly reproducible for a given configuration and seed.

use crate::clock::{ClockConfig, LocalClock, LocalTime};
use crate::faults::FaultNetStats;
use crate::net::{NetworkConfig, Region};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use conprobe_obs::{Counter, ObsSink, Severity};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// What happened in one simulator event (when tracing is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEventKind {
    /// A message was delivered from the contained node.
    Delivered {
        /// Sender.
        src: NodeId,
    },
    /// A message from `src` was dropped by loss or partition.
    Dropped {
        /// Sender.
        src: NodeId,
    },
    /// A timer with the contained token fired.
    Timer(u64),
    /// The node's `on_start` ran.
    Started,
}

/// One entry of the simulator's event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimEvent {
    /// True simulation time of the event.
    pub at: SimTime,
    /// The node the event was dispatched to.
    pub node: NodeId,
    /// What happened.
    pub kind: SimEventKind,
}

/// Identifies a node within one [`World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A participant in the simulation.
///
/// Implementations must be `'static` (so the world can downcast them back to
/// their concrete type after a run via [`World::node_as`]) and `Send` (so a
/// whole world can be run on a worker thread by the parallel campaign
/// runner).
pub trait Node<M>: Any + Send {
    /// Called once when the simulation first runs this node.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message from `from` is delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, token: u64);
}

/// Configuration for a [`World`].
#[derive(Debug, Clone, Default)]
pub struct WorldConfig {
    /// Network model (latency matrix + partitions).
    pub net: NetworkConfig,
    /// Distribution from which node clocks are sampled.
    pub clocks: ClockConfig,
}

enum EventKind<M> {
    Start,
    Deliver { src: NodeId, msg: M },
    Timer { token: u64 },
}

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    dst: NodeId,
    kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Per-link observability counters (one pair of regions).
struct LinkObs {
    delivered: Counter,
    dropped: Counter,
}

/// Pre-resolved metric handles for one world, created when a sink is
/// installed via [`World::install_obs`]. Handles are cached here so the hot
/// path touches atomics, never the registry's name map.
struct WorldObs {
    sink: ObsSink,
    delivered: Counter,
    dropped: Counter,
    timers: Counter,
    fault_blocked: Counter,
    fault_dropped: Counter,
    fault_delayed: Counter,
    links: std::collections::HashMap<(Region, Region), LinkObs>,
}

impl WorldObs {
    fn new(sink: ObsSink) -> Self {
        let m = &sink.metrics;
        WorldObs {
            delivered: m.counter("sim.delivered"),
            dropped: m.counter("sim.dropped"),
            timers: m.counter("sim.timers"),
            fault_blocked: m.counter("sim.fault.blocked"),
            fault_dropped: m.counter("sim.fault.dropped"),
            fault_delayed: m.counter("sim.fault.delayed"),
            links: std::collections::HashMap::new(),
            sink,
        }
    }

    fn link(&mut self, src: Region, dst: Region) -> &LinkObs {
        let WorldObs { links, sink, .. } = self;
        links.entry((src, dst)).or_insert_with(|| {
            let name = format!("sim.link.{}-{}", src.short(), dst.short());
            LinkObs {
                delivered: sink.metrics.counter(&format!("{name}.delivered")),
                dropped: sink.metrics.counter(&format!("{name}.dropped")),
            }
        })
    }
}

/// Internal world state shared with [`Context`] during dispatch.
struct WorldCore<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    regions: Vec<Region>,
    clocks: Vec<LocalClock>,
    node_rngs: Vec<SimRng>,
    net: NetworkConfig,
    net_rng: SimRng,
    /// Dedicated stream for fault-plan loss/delay sampling, split from the
    /// plan's own seed so an empty plan perturbs nothing.
    fault_rng: SimRng,
    delivered: u64,
    dropped: u64,
    fault_stats: FaultNetStats,
    /// Last scheduled arrival per ordered (src, dst) channel.
    ordered_last: std::collections::HashMap<(NodeId, NodeId), SimTime>,
    /// Event trace, when enabled (None = tracing off).
    trace: Option<Vec<SimEvent>>,
    /// Observability sink + cached handles (None = observability off).
    /// Recording mutates atomics and a bounded log only — it never draws
    /// randomness or schedules events, so it cannot perturb determinism.
    obs: Option<WorldObs>,
}

impl<M> WorldCore<M> {
    fn record(&mut self, node: NodeId, kind: SimEventKind) {
        if let Some(trace) = &mut self.trace {
            trace.push(SimEvent { at: self.now, node, kind });
        }
        if let Some(obs) = &mut self.obs {
            match kind {
                SimEventKind::Delivered { src } => {
                    let (ra, rb) = (self.regions[src.0], self.regions[node.0]);
                    obs.delivered.inc();
                    obs.link(ra, rb).delivered.inc();
                    if obs.sink.log.enabled(Severity::Debug, "sim") {
                        obs.sink.log.record(
                            self.now.as_nanos(),
                            Severity::Debug,
                            "sim",
                            format!("deliver {src} -> {node}"),
                        );
                    }
                }
                SimEventKind::Dropped { src } => {
                    let (ra, rb) = (self.regions[src.0], self.regions[node.0]);
                    obs.dropped.inc();
                    obs.link(ra, rb).dropped.inc();
                    if obs.sink.log.enabled(Severity::Warn, "sim") {
                        obs.sink.log.record(
                            self.now.as_nanos(),
                            Severity::Warn,
                            "sim",
                            format!("drop {src} -> {node}"),
                        );
                    }
                }
                SimEventKind::Timer(_) => obs.timers.inc(),
                SimEventKind::Started => {
                    if obs.sink.log.enabled(Severity::Info, "sim") {
                        obs.sink.log.record(
                            self.now.as_nanos(),
                            Severity::Info,
                            "sim",
                            format!("node {node} started"),
                        );
                    }
                }
            }
        }
    }
}

impl<M> WorldCore<M> {
    fn push(&mut self, at: SimTime, dst: NodeId, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, dst, kind }));
    }

    fn send(&mut self, src: NodeId, dst: NodeId, msg: M, ordered: bool) {
        if self.net.is_blocked(src, dst, self.now) {
            self.dropped += 1;
            self.record(dst, SimEventKind::Dropped { src });
            return;
        }
        let (ra, rb) = (self.regions[src.0], self.regions[dst.0]);
        if self.net.matrix.sample_loss(ra, rb, &mut self.net_rng) {
            self.dropped += 1;
            self.record(dst, SimEventKind::Dropped { src });
            return;
        }
        let mut delay = self.net.matrix.sample_delay(ra, rb, &mut self.net_rng);
        // Fault-plan effects, sampled from their own stream. The guard
        // keeps configurations without a plan on byte-identical replay.
        if !self.net.effects.is_empty() {
            if self.net.fault_blocks(ra, rb, self.now) {
                self.dropped += 1;
                self.fault_stats.blocked += 1;
                if let Some(obs) = &mut self.obs {
                    obs.fault_blocked.inc();
                }
                self.record(dst, SimEventKind::Dropped { src });
                return;
            }
            if let Some(p) = self.net.fault_loss(ra, rb, self.now) {
                if self.fault_rng.gen_bool(p) {
                    self.dropped += 1;
                    self.fault_stats.dropped += 1;
                    if let Some(obs) = &mut self.obs {
                        obs.fault_dropped.inc();
                    }
                    self.record(dst, SimEventKind::Dropped { src });
                    return;
                }
            }
            let extra = self.net.fault_extra_delay(ra, rb, self.now, &mut self.fault_rng);
            if !extra.is_zero() {
                self.fault_stats.delayed += 1;
                if let Some(obs) = &mut self.obs {
                    obs.fault_delayed.inc();
                }
                delay += extra;
            }
        }
        let mut at = self.now + delay;
        if ordered {
            let last = self.ordered_last.entry((src, dst)).or_insert(SimTime::ZERO);
            if at <= *last {
                at = *last + SimDuration::from_nanos(1);
            }
            *last = at;
        }
        self.push(at, dst, EventKind::Deliver { src, msg });
    }
}

/// The callback interface a [`Node`] uses to act on the world.
pub struct Context<'a, M> {
    core: &'a mut WorldCore<M>,
    node: NodeId,
}

impl<'a, M> Context<'a, M> {
    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// This node's region.
    pub fn region(&self) -> Region {
        self.core.regions[self.node.0]
    }

    /// Reads this node's **local** clock. This is the only notion of time a
    /// node may base decisions or log entries on.
    pub fn now_local(&self) -> LocalTime {
        self.core.clocks[self.node.0].read(self.core.now)
    }

    /// True simulation time. **Instrumentation/ablation only** — production
    /// node logic must use [`Context::now_local`], exactly as the paper's
    /// agents could only read their VM clocks.
    pub fn true_now(&self) -> SimTime {
        self.core.now
    }

    /// Sends `msg` to `dst`. Delivery is asynchronous with a sampled network
    /// delay; the message may be lost or blocked by a partition. Messages on
    /// the same (src, dst) pair may be reordered by jitter — use
    /// [`Context::send_ordered`] for FIFO semantics.
    pub fn send(&mut self, dst: NodeId, msg: M) {
        self.core.send(self.node, dst, msg, false);
    }

    /// Like [`Context::send`], but deliveries from this node to `dst` issued
    /// through this method never overtake one another (a TCP-like FIFO
    /// channel). Used by replication streams, whose real-world counterparts
    /// run over connections that preserve order.
    pub fn send_ordered(&mut self, dst: NodeId, msg: M) {
        self.core.send(self.node, dst, msg, true);
    }

    /// Schedules [`Node::on_timer`] on this node after `delay`, carrying
    /// `token`. Timers always fire; stale timers must be ignored by the node.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let at = self.core.now + delay;
        self.core.push(at, self.node, EventKind::Timer { token });
    }

    /// This node's private deterministic random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.core.node_rngs[self.node.0]
    }

    /// The world's observability sink, when one is installed.
    /// **Instrumentation only**: nodes may record metrics/events through it
    /// but must never base behaviour on what they read back — that would
    /// make the simulation depend on whether telemetry is on.
    pub fn obs(&self) -> Option<&ObsSink> {
        self.core.obs.as_ref().map(|o| &o.sink)
    }
}

/// A complete simulated world: nodes + network + event queue.
pub struct World<M> {
    core: WorldCore<M>,
    nodes: Vec<Option<Box<dyn Node<M>>>>,
    rng_root: SimRng,
    clock_config: ClockConfig,
}

impl<M: 'static> World<M> {
    /// Creates an empty world from a configuration and a seed.
    pub fn new(config: WorldConfig, seed: u64) -> Self {
        let rng_root = SimRng::new(seed);
        let fault_rng = rng_root.split_indexed("faults", config.net.fault_seed);
        World {
            core: WorldCore {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                regions: Vec::new(),
                clocks: Vec::new(),
                node_rngs: Vec::new(),
                net: config.net,
                net_rng: rng_root.split("net"),
                fault_rng,
                delivered: 0,
                dropped: 0,
                fault_stats: FaultNetStats::default(),
                ordered_last: std::collections::HashMap::new(),
                trace: None,
                obs: None,
            },
            nodes: Vec::new(),
            rng_root,
            clock_config: config.clocks,
        }
    }

    /// Adds a node in `region` with a clock sampled from the world's
    /// [`ClockConfig`]. Returns its id. The node's `on_start` runs at the
    /// current simulation time once the loop is driven.
    pub fn add_node(&mut self, region: Region, node: Box<dyn Node<M>>) -> NodeId {
        let idx = self.nodes.len() as u64;
        let mut clock_rng = self.rng_root.split_indexed("clock", idx);
        let clock = LocalClock::sample(&self.clock_config, &mut clock_rng);
        self.add_node_with_clock(region, clock, node)
    }

    /// Adds a node with an explicit clock (e.g. [`LocalClock::perfect`]).
    pub fn add_node_with_clock(
        &mut self,
        region: Region,
        clock: LocalClock,
        node: Box<dyn Node<M>>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.core.regions.push(region);
        self.core.clocks.push(clock);
        self.core.node_rngs.push(self.rng_root.split_indexed("node", id.0 as u64));
        self.nodes.push(Some(node));
        self.core.push(self.core.now, id, EventKind::Start);
        id
    }

    /// Current true simulation time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Number of messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.core.delivered
    }

    /// Number of messages dropped (loss, partition or fault plan) so far.
    pub fn dropped(&self) -> u64 {
        self.core.dropped
    }

    /// Counters of fault-plan network interference (the network half of a
    /// fault ledger). All zero when no effects are configured.
    pub fn fault_stats(&self) -> FaultNetStats {
        self.core.fault_stats
    }

    /// The region a node was placed in.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this world.
    pub fn region_of(&self, id: NodeId) -> Region {
        self.core.regions[id.0]
    }

    /// The true clock of a node — for ablations comparing estimated clock
    /// deltas against ground truth.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this world.
    pub fn clock_of(&self, id: NodeId) -> &LocalClock {
        &self.core.clocks[id.0]
    }

    /// Borrows a node back as its concrete type (post-run result
    /// extraction).
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        let node = self.nodes.get(id.0)?.as_deref()?;
        (node as &dyn Any).downcast_ref::<T>()
    }

    /// Mutably borrows a node back as its concrete type.
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        let node = self.nodes.get_mut(id.0)?.as_deref_mut()?;
        (node as &mut dyn Any).downcast_mut::<T>()
    }

    /// Processes a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.core.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.core.now, "time went backwards");
        self.core.now = ev.at;
        // Take the node out so we can hand the core to it mutably.
        let mut node = match self.nodes.get_mut(ev.dst.0).and_then(Option::take) {
            Some(n) => n,
            None => return true, // node slot empty (shouldn't happen) — drop event
        };
        {
            let mut ctx = Context { core: &mut self.core, node: ev.dst };
            match ev.kind {
                EventKind::Start => {
                    ctx.core.record(ev.dst, SimEventKind::Started);
                    node.on_start(&mut ctx);
                }
                EventKind::Deliver { src, msg } => {
                    ctx.core.delivered += 1;
                    ctx.core.record(ev.dst, SimEventKind::Delivered { src });
                    node.on_message(&mut ctx, src, msg);
                }
                EventKind::Timer { token } => {
                    ctx.core.record(ev.dst, SimEventKind::Timer(token));
                    node.on_timer(&mut ctx, token);
                }
            }
        }
        self.nodes[ev.dst.0] = Some(node);
        true
    }

    /// Runs until the queue is empty or `deadline` is reached; the clock is
    /// left at `max(now, deadline)` if the queue drains early, or at the last
    /// processed event otherwise.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(ev)) = self.core.queue.peek() {
            if ev.at > deadline {
                self.core.now = deadline;
                return;
            }
            self.step();
        }
        if self.core.now < deadline {
            self.core.now = deadline;
        }
    }

    /// Runs until no events remain.
    ///
    /// # Panics
    ///
    /// Panics after 500 million events, which indicates a livelock (e.g. a
    /// node rescheduling a timer unconditionally forever).
    pub fn run_until_idle(&mut self) {
        assert!(
            self.run_capped(500_000_000),
            "simulation did not quiesce within 500M events — livelock?"
        );
    }

    /// Runs until idle or until `max_events` have been processed. Returns
    /// `true` if the world went idle.
    pub fn run_capped(&mut self, max_events: u64) -> bool {
        for _ in 0..max_events {
            if !self.step() {
                return true;
            }
        }
        self.core.queue.is_empty()
    }

    /// Runs until `predicate` returns true (checked after every event) or the
    /// queue drains. Returns `true` if the predicate fired.
    pub fn run_while<F: FnMut(&World<M>) -> bool>(&mut self, mut keep_going: F) -> bool {
        loop {
            if !keep_going(self) {
                return true;
            }
            if !self.step() {
                return false;
            }
        }
    }
}

impl<M: 'static> World<M> {
    /// Replaces the clock-sampling configuration used by subsequent
    /// [`World::add_node`] calls.
    pub fn set_clock_config(&mut self, config: ClockConfig) {
        self.clock_config = config;
    }

    /// Schedules a partition after construction (useful once node ids are
    /// known, e.g. to cut a specific replica off).
    pub fn add_partition(&mut self, spec: crate::net::PartitionSpec) {
        self.core.net.add_partition(spec);
    }

    /// Schedules a fault-plan link effect after construction.
    pub fn add_fault_effect(&mut self, effect: crate::faults::LinkEffect) {
        self.core.net.add_effect(effect);
    }

    /// Enables event tracing: every dispatch and drop is recorded until
    /// [`World::take_trace`] drains the log. Costs one `Vec` push per
    /// event — leave off for large campaigns.
    pub fn enable_tracing(&mut self) {
        if self.core.trace.is_none() {
            self.core.trace = Some(Vec::new());
        }
    }

    /// Drains and returns the event trace recorded so far (empty when
    /// tracing was never enabled).
    pub fn take_trace(&mut self) -> Vec<SimEvent> {
        self.core.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Installs an observability sink: global and per-region-link
    /// delivery/drop counters, fault-interference counters, timer counts,
    /// and the structured event log (all under the `sim.` namespace; nodes
    /// reach the same sink through [`Context::obs`]). Recording draws no
    /// randomness and schedules nothing, so an instrumented run is
    /// byte-identical to an uninstrumented one; leave uninstalled for zero
    /// overhead beyond one branch per event.
    pub fn install_obs(&mut self, sink: ObsSink) {
        self.core.obs = Some(WorldObs::new(sink));
    }

    /// The installed observability sink, if any.
    pub fn obs_sink(&self) -> Option<&ObsSink> {
        self.core.obs.as_ref().map(|o| &o.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{LatencyMatrix, LinkSpec, PartitionSpec};

    type Msg = &'static str;

    /// Echoes each message back `bounces` times.
    struct Echo {
        bounces: u32,
        received: Vec<(NodeId, Msg)>,
        local_stamps: Vec<LocalTime>,
    }
    impl Echo {
        fn new(bounces: u32) -> Self {
            Echo { bounces, received: Vec::new(), local_stamps: Vec::new() }
        }
    }
    impl Node<Msg> for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            self.received.push((from, msg));
            self.local_stamps.push(ctx.now_local());
            if self.bounces > 0 {
                self.bounces -= 1;
                ctx.send(from, "pong");
            }
        }
        fn on_timer(&mut self, _: &mut Context<'_, Msg>, _: u64) {}
    }

    struct Kick {
        target: NodeId,
    }
    impl Node<Msg> for Kick {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.send(self.target, "ping");
        }
        fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
        fn on_timer(&mut self, _: &mut Context<'_, Msg>, _: u64) {}
    }

    fn two_node_world() -> (World<Msg>, NodeId, NodeId) {
        let mut w = World::new(WorldConfig::default(), 1);
        let echo = w.add_node(Region::Tokyo, Box::new(Echo::new(0)));
        let kick = w.add_node(Region::Oregon, Box::new(Kick { target: echo }));
        (w, echo, kick)
    }

    #[test]
    fn message_arrives_after_link_latency() {
        let (mut w, echo, kick) = two_node_world();
        w.run_until_idle();
        let e = w.node_as::<Echo>(echo).unwrap();
        assert_eq!(e.received, vec![(kick, "ping")]);
        // Oregon→Tokyo base one-way is 48 ms in the paper WAN.
        assert!(w.now() >= SimTime::from_millis(48));
        assert_eq!(w.delivered(), 1);
    }

    #[test]
    fn downcast_wrong_type_is_none() {
        let (w, echo, _) = two_node_world();
        assert!(w.node_as::<Kick>(echo).is_none());
        assert!(w.node_as::<Echo>(NodeId(99)).is_none());
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed| {
            let mut w = World::new(WorldConfig::default(), seed);
            let echo = w.add_node(Region::Tokyo, Box::new(Echo::new(5)));
            let _kick = w.add_node(Region::Oregon, Box::new(Echo::new(5)));
            let kick = w.add_node(Region::Ireland, Box::new(Kick { target: echo }));
            let _ = kick;
            w.run_until_idle();
            w.now()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node<Msg> for TimerNode {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimDuration::from_millis(30), 3);
                ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(20), 2);
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, _: &mut Context<'_, Msg>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut w = World::new(WorldConfig::default(), 1);
        let id = w.add_node(Region::Oregon, Box::new(TimerNode { fired: vec![] }));
        w.run_until_idle();
        assert_eq!(w.node_as::<TimerNode>(id).unwrap().fired, vec![1, 2, 3]);
        assert_eq!(w.now(), SimTime::from_millis(30));
    }

    #[test]
    fn equal_deadline_events_fire_in_schedule_order() {
        struct Multi {
            fired: Vec<u64>,
        }
        impl Node<Msg> for Multi {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                for token in [9, 4, 7] {
                    ctx.set_timer(SimDuration::from_millis(5), token);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, _: &mut Context<'_, Msg>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut w = World::new(WorldConfig::default(), 1);
        let id = w.add_node(Region::Oregon, Box::new(Multi { fired: vec![] }));
        w.run_until_idle();
        // FIFO among same-time events, by insertion sequence.
        assert_eq!(w.node_as::<Multi>(id).unwrap().fired, vec![9, 4, 7]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut w, _, _) = two_node_world();
        w.run_until(SimTime::from_millis(1));
        assert_eq!(w.now(), SimTime::from_millis(1));
        assert_eq!(w.delivered(), 0);
        w.run_until(SimTime::from_secs(10));
        assert_eq!(w.delivered(), 1);
        assert_eq!(w.now(), SimTime::from_secs(10));
    }

    #[test]
    fn partition_drops_messages() {
        let mut cfg = WorldConfig::default();
        cfg.net.add_partition(PartitionSpec {
            side_a: vec![NodeId(0)],
            side_b: vec![NodeId(1)],
            start: SimTime::ZERO,
            end: SimTime::from_secs(60),
        });
        let mut w = World::new(cfg, 1);
        let echo = w.add_node(Region::Tokyo, Box::new(Echo::new(0)));
        let _kick = w.add_node(Region::Oregon, Box::new(Kick { target: echo }));
        w.run_until_idle();
        assert_eq!(w.dropped(), 1);
        assert!(w.node_as::<Echo>(echo).unwrap().received.is_empty());
    }

    #[test]
    fn lossy_link_drops_probabilistically() {
        let mut cfg = WorldConfig::default();
        cfg.net.matrix = LatencyMatrix::uniform(LinkSpec::wan_ms(10).with_loss(1.0));
        let mut w = World::new(cfg, 1);
        let echo = w.add_node(Region::Tokyo, Box::new(Echo::new(0)));
        let _kick = w.add_node(Region::Oregon, Box::new(Kick { target: echo }));
        w.run_until_idle();
        assert_eq!(w.dropped(), 1);
        assert_eq!(w.delivered(), 0);
    }

    #[test]
    fn local_clock_visible_and_offset() {
        let mut w = World::new(WorldConfig::default(), 1);
        let echo = w.add_node_with_clock(
            Region::Tokyo,
            LocalClock::new(1_000_000_000, 0.0),
            Box::new(Echo::new(0)),
        );
        let _kick = w.add_node(Region::Oregon, Box::new(Kick { target: echo }));
        w.run_until_idle();
        let e = w.node_as::<Echo>(echo).unwrap();
        let stamp = e.local_stamps[0];
        // Reading = true delivery time + 1 s offset.
        assert_eq!(stamp.as_nanos(), w.now().as_nanos() as i64 + 1_000_000_000);
    }

    #[test]
    fn run_while_predicate_stops_early() {
        let (mut w, _, _) = two_node_world();
        let stopped = w.run_while(|w| w.delivered() == 0);
        assert!(stopped);
        assert_eq!(w.delivered(), 1);
    }

    #[test]
    fn run_capped_reports_livelock() {
        struct Loop;
        impl Node<Msg> for Loop {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _: u64) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
        }
        let mut w = World::new(WorldConfig::default(), 1);
        w.add_node(Region::Oregon, Box::new(Loop));
        assert!(!w.run_capped(1000));
    }

    #[test]
    fn ordered_sends_never_overtake() {
        struct Collector {
            got: Vec<Msg>,
        }
        impl Node<Msg> for Collector {
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, msg: Msg) {
                self.got.push(msg);
            }
            fn on_timer(&mut self, _: &mut Context<'_, Msg>, _: u64) {}
        }
        struct Burst {
            target: NodeId,
            ordered: bool,
        }
        impl Node<Msg> for Burst {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                let labels: [Msg; 5] = ["a", "b", "c", "d", "e"];
                for m in labels {
                    if self.ordered {
                        ctx.send_ordered(self.target, m);
                    } else {
                        ctx.send(self.target, m);
                    }
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, _: &mut Context<'_, Msg>, _: u64) {}
        }
        // Across many seeds, ordered bursts always arrive in send order;
        // unordered bursts get reordered by jitter at least once.
        let mut unordered_scrambled = false;
        for seed in 0..20 {
            for ordered in [true, false] {
                let mut w = World::new(WorldConfig::default(), seed);
                let sink = w.add_node(Region::Tokyo, Box::new(Collector { got: vec![] }));
                let _src = w.add_node(Region::Oregon, Box::new(Burst { target: sink, ordered }));
                w.run_until_idle();
                let got = &w.node_as::<Collector>(sink).unwrap().got;
                assert_eq!(got.len(), 5);
                let in_order = got == &["a", "b", "c", "d", "e"];
                if ordered {
                    assert!(in_order, "ordered send scrambled at seed {seed}: {got:?}");
                } else if !in_order {
                    unordered_scrambled = true;
                }
            }
        }
        assert!(unordered_scrambled, "jitter should scramble some unordered burst");
    }

    #[test]
    fn worlds_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<World<String>>();
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::faults::{EffectKind, FaultEvent, FaultPlan, LinkEffect, LinkScope};

    type Msg = &'static str;

    /// Sends one "ping" to `target` every 100 ms, `count` times.
    struct Pinger {
        target: NodeId,
        count: u32,
    }
    impl Node<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.set_timer(SimDuration::from_millis(100), 0);
        }
        fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _: u64) {
            if self.count > 0 {
                self.count -= 1;
                ctx.send(self.target, "ping");
                ctx.set_timer(SimDuration::from_millis(100), 0);
            }
        }
    }

    struct Sink {
        got: u32,
    }
    impl Node<Msg> for Sink {
        fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {
            self.got += 1;
        }
        fn on_timer(&mut self, _: &mut Context<'_, Msg>, _: u64) {}
    }

    fn pinger_world(effects: Vec<LinkEffect>, seed: u64) -> (World<Msg>, NodeId) {
        let mut cfg = WorldConfig::default();
        cfg.net.effects = effects;
        let mut w = World::new(cfg, seed);
        let sink = w.add_node(Region::Tokyo, Box::new(Sink { got: 0 }));
        let _src = w.add_node(Region::Oregon, Box::new(Pinger { target: sink, count: 50 }));
        (w, sink)
    }

    #[test]
    fn block_window_drops_and_is_counted() {
        let plan = FaultPlan::new(1).with(FaultEvent::LinkFlap {
            scope: LinkScope::Between(Region::Oregon, Region::Tokyo),
            at: SimTime::from_secs(1),
            down_for: SimDuration::from_secs(1),
            up_for: SimDuration::from_secs(1),
            flaps: 1,
        });
        let (mut w, sink) = pinger_world(plan.network_effects(), 3);
        w.run_until_idle();
        let stats = w.fault_stats();
        // Sends at 1.0 s..1.9 s fall inside the block window (10 of 50).
        assert_eq!(stats.blocked, 10);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.delayed, 0);
        assert_eq!(w.node_as::<Sink>(sink).unwrap().got, 40);
        assert_eq!(w.dropped(), 10);
    }

    #[test]
    fn loss_burst_drops_probabilistically_and_deterministically() {
        let plan = FaultPlan::new(7).with(FaultEvent::LossBurst {
            scope: LinkScope::All,
            at: SimTime::ZERO,
            duration: SimDuration::from_secs(60),
            loss: 0.5,
        });
        let run = |seed| {
            let (mut w, sink) = pinger_world(plan.network_effects(), seed);
            w.run_until_idle();
            (w.fault_stats(), w.node_as::<Sink>(sink).unwrap().got)
        };
        let (stats, got) = run(5);
        assert!(stats.dropped > 10 && stats.dropped < 40, "~half of 50: {stats:?}");
        assert_eq!(got, 50 - stats.dropped as u32);
        assert_eq!(run(5), (stats, got), "same seed + plan replays identically");
        assert_ne!(run(6).0, stats, "a different world seed makes different drops");
    }

    #[test]
    fn degraded_link_adds_delay_without_dropping() {
        let plan = FaultPlan::new(2).with(FaultEvent::DegradedLink {
            scope: LinkScope::Touching(Region::Tokyo),
            at: SimTime::ZERO,
            duration: SimDuration::from_secs(60),
            extra_base: SimDuration::from_secs(1),
            extra_jitter: SimDuration::from_millis(10),
        });
        let (mut w, sink) = pinger_world(plan.network_effects(), 4);
        let (mut base, base_sink) = pinger_world(Vec::new(), 4);
        w.run_until_idle();
        base.run_until_idle();
        assert_eq!(w.fault_stats().delayed, 50);
        assert_eq!(w.node_as::<Sink>(sink).unwrap().got, 50, "nothing dropped");
        assert_eq!(base.node_as::<Sink>(base_sink).unwrap().got, 50);
        // The last ping leaves at 5.0 s and gains ≥ 1 s extra delay, so the
        // degraded world's final delivery lands past 6.0 s; the baseline
        // world is fully idle well before that.
        assert!(w.now() >= SimTime::from_secs(6));
        assert!(base.now() < SimTime::from_secs(6));
    }

    #[test]
    fn empty_effects_leave_existing_streams_untouched() {
        // A world with no effects must behave exactly like one built before
        // the fault engine existed: same deliveries, same finish time.
        let (mut a, sink_a) = pinger_world(Vec::new(), 9);
        let mut cfg = WorldConfig::default();
        cfg.net.fault_seed = 0xDEAD_BEEF; // different fault stream, unused
        let mut b = World::new(cfg, 9);
        let sink_b = b.add_node(Region::Tokyo, Box::new(Sink { got: 0 }));
        let _src = b.add_node(Region::Oregon, Box::new(Pinger { target: sink_b, count: 50 }));
        a.run_until_idle();
        b.run_until_idle();
        assert_eq!(a.now(), b.now());
        assert_eq!(a.node_as::<Sink>(sink_a).unwrap().got, b.node_as::<Sink>(sink_b).unwrap().got);
        assert_eq!(a.fault_stats(), FaultNetStats::default());
    }

    #[test]
    fn expired_effect_has_no_influence() {
        // An effect entirely in the past still exercises the effects path
        // (fault_rng exists) but changes nothing observable.
        let effects = vec![LinkEffect {
            scope: LinkScope::All,
            start: SimTime::ZERO,
            end: SimTime::from_millis(1),
            kind: EffectKind::Block,
        }];
        let (mut w, sink) = pinger_world(effects, 11);
        w.run_until_idle();
        assert_eq!(w.fault_stats(), FaultNetStats::default());
        assert_eq!(w.node_as::<Sink>(sink).unwrap().got, 50);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::net::Region;

    type Msg = u32;

    struct Echo;
    impl Node<Msg> for Echo {
        fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
        fn on_timer(&mut self, _: &mut Context<'_, Msg>, _: u64) {}
    }
    struct Kick {
        target: NodeId,
    }
    impl Node<Msg> for Kick {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.set_timer(SimDuration::from_millis(5), 9);
        }
        fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _: u64) {
            ctx.send(self.target, 1);
        }
    }

    #[test]
    fn tracing_records_starts_timers_and_deliveries() {
        let mut w = World::new(WorldConfig::default(), 2);
        w.enable_tracing();
        let echo = w.add_node(Region::Tokyo, Box::new(Echo));
        let kick = w.add_node(Region::Oregon, Box::new(Kick { target: echo }));
        w.run_until_idle();
        let trace = w.take_trace();
        assert!(trace.iter().any(|e| e.node == kick && e.kind == SimEventKind::Started));
        assert!(trace.iter().any(|e| e.node == kick && e.kind == SimEventKind::Timer(9)));
        let delivered: Vec<_> =
            trace.iter().filter(|e| matches!(e.kind, SimEventKind::Delivered { .. })).collect();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].node, echo);
        // Times are monotone.
        for w in trace.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // Drained: the second take is empty.
        assert!(w.take_trace().is_empty());
    }

    #[test]
    fn tracing_off_records_nothing() {
        let mut w = World::new(WorldConfig::default(), 2);
        let echo = w.add_node(Region::Tokyo, Box::new(Echo));
        let _kick = w.add_node(Region::Oregon, Box::new(Kick { target: echo }));
        w.run_until_idle();
        assert!(w.take_trace().is_empty());
    }

    #[test]
    fn drops_are_traced() {
        let mut cfg = WorldConfig::default();
        cfg.net.matrix =
            crate::net::LatencyMatrix::uniform(crate::net::LinkSpec::wan_ms(5).with_loss(1.0));
        let mut w = World::new(cfg, 2);
        w.enable_tracing();
        let echo = w.add_node(Region::Tokyo, Box::new(Echo));
        let kick = w.add_node(Region::Oregon, Box::new(Kick { target: echo }));
        w.run_until_idle();
        let trace = w.take_trace();
        assert!(trace
            .iter()
            .any(|e| e.node == echo && e.kind == SimEventKind::Dropped { src: kick }));
    }
}

#[cfg(test)]
mod obs_tests {
    use super::*;
    use conprobe_obs::{EventLog, Severity};

    type Msg = u32;

    struct Echo;
    impl Node<Msg> for Echo {
        fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
        fn on_timer(&mut self, _: &mut Context<'_, Msg>, _: u64) {}
    }
    struct Kick {
        target: NodeId,
        shots: u32,
    }
    impl Node<Msg> for Kick {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.set_timer(SimDuration::from_millis(5), 9);
        }
        fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _: u64) {
            ctx.send(self.target, 1);
            if self.shots > 1 {
                self.shots -= 1;
                ctx.set_timer(SimDuration::from_millis(5), 9);
            }
        }
    }

    fn drive(cfg: WorldConfig, sink: Option<ObsSink>) -> (World<Msg>, NodeId) {
        let mut w = World::new(cfg, 2);
        if let Some(sink) = sink {
            w.install_obs(sink);
        }
        let echo = w.add_node(Region::Tokyo, Box::new(Echo));
        let _kick = w.add_node(Region::Oregon, Box::new(Kick { target: echo, shots: 3 }));
        w.run_until_idle();
        (w, echo)
    }

    #[test]
    fn counters_match_world_totals() {
        let sink = ObsSink::new();
        let (w, _) = drive(WorldConfig::default(), Some(sink.clone()));
        assert_eq!(sink.metrics.counter("sim.delivered").get(), w.delivered());
        assert_eq!(sink.metrics.counter("sim.dropped").get(), w.dropped());
        // 3 timer firings from Kick plus its start event; the per-link
        // Oregon→Tokyo counter sees every delivery.
        assert_eq!(sink.metrics.counter("sim.timers").get(), 3);
        assert_eq!(sink.metrics.counter("sim.link.OR-JP.delivered").get(), 3);
    }

    #[test]
    fn drops_and_faults_are_counted() {
        let mut cfg = WorldConfig::default();
        cfg.net.matrix =
            crate::net::LatencyMatrix::uniform(crate::net::LinkSpec::wan_ms(5).with_loss(1.0));
        let sink = ObsSink::new();
        let (w, _) = drive(cfg, Some(sink.clone()));
        assert_eq!(w.delivered(), 0);
        assert_eq!(sink.metrics.counter("sim.dropped").get(), w.dropped());
        assert_eq!(sink.metrics.counter("sim.link.OR-JP.dropped").get(), w.dropped());
    }

    #[test]
    fn event_log_records_sim_time_stamped_events() {
        let sink = ObsSink::with_log(EventLog::new(64).with_min_severity(Severity::Debug));
        let (w, echo) = drive(WorldConfig::default(), Some(sink.clone()));
        let events = sink.log.drain();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.target == "sim"));
        assert!(events.iter().any(|e| e.message.contains(&format!("-> {echo}"))));
        // Stamped in sim time, not wall time: last event at final sim now.
        assert!(events.iter().all(|e| e.at_nanos <= w.now().as_nanos()));
    }

    #[test]
    fn observability_does_not_perturb_the_schedule() {
        // Same seed, lossy links (exercises fault_rng), with and without a
        // sink installed: final sim time and delivery totals must agree.
        let lossy = || {
            let mut cfg = WorldConfig::default();
            cfg.net.matrix =
                crate::net::LatencyMatrix::uniform(crate::net::LinkSpec::wan_ms(5).with_loss(0.5));
            cfg
        };
        let sink = ObsSink::with_log(EventLog::new(16));
        let (plain, _) = drive(lossy(), None);
        let (observed, _) = drive(lossy(), Some(sink));
        assert_eq!(plain.now(), observed.now());
        assert_eq!(plain.delivered(), observed.delivered());
        assert_eq!(plain.dropped(), observed.dropped());
    }
}
