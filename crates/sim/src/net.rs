//! WAN network model: regions, latency matrix, loss, partitions.
//!
//! The paper's agents sat in three Amazon EC2 availability zones — Oregon,
//! Tokyo and Ireland — with a coordinator in North Virginia, and reported
//! average coordinator↔agent RTTs of 136 ms (Oregon), 218 ms (Tokyo) and
//! 172 ms (Ireland). [`LatencyMatrix::paper_wan`] seeds the model from those
//! numbers; inter-agent links use public WAN measurements of the same era.
//!
//! One-way delays are sampled as `base + Exp(jitter_mean)`, a standard heavy
//! -tail-ish WAN model that keeps medians near the base while producing the
//! occasional slow packet. Links can also drop messages with a fixed
//! probability, and [`PartitionSpec`]s block traffic between node sets during
//! a time window (used to reproduce the transient Tokyo partition the paper
//! infers for Facebook Group).

use crate::faults::{EffectKind, LinkEffect};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::world::NodeId;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;

/// A geographic region hosting one or more nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Region {
    /// Amazon EC2 us-west-2 — paper agent 1.
    Oregon,
    /// Amazon EC2 ap-northeast-1 — paper agent 2.
    Tokyo,
    /// Amazon EC2 eu-west-1 — paper agent 3.
    Ireland,
    /// Amazon EC2 us-east-1 — paper coordinator.
    Virginia,
    /// An additional datacenter region (service back-ends).
    Datacenter(u8),
}

impl Region {
    /// The three agent regions, in the paper's agent-id order.
    pub const AGENTS: [Region; 3] = [Region::Oregon, Region::Tokyo, Region::Ireland];

    /// Short label used in figures ("OR", "JP", "IR", "VA", "DCn").
    ///
    /// Borrowed for the fixed regions; only `Datacenter(n)` allocates.
    pub fn short(&self) -> Cow<'static, str> {
        match self {
            Region::Oregon => Cow::Borrowed("OR"),
            Region::Tokyo => Cow::Borrowed("JP"),
            Region::Ireland => Cow::Borrowed("IR"),
            Region::Virginia => Cow::Borrowed("VA"),
            Region::Datacenter(n) => Cow::Owned(format!("DC{n}")),
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Oregon => write!(f, "Oregon"),
            Region::Tokyo => write!(f, "Tokyo"),
            Region::Ireland => write!(f, "Ireland"),
            Region::Virginia => write!(f, "Virginia"),
            Region::Datacenter(n) => write!(f, "Datacenter{n}"),
        }
    }
}

/// Timing and reliability parameters of a directed region pair.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Minimum one-way delay.
    pub base: SimDuration,
    /// Mean of the exponential jitter added on top of `base`.
    pub jitter_mean: SimDuration,
    /// Probability that a message on this link is silently dropped.
    pub loss: f64,
}

impl LinkSpec {
    /// A link with the given base one-way delay in milliseconds and 10 %
    /// of the base as mean jitter, lossless.
    pub fn wan_ms(base_ms: u64) -> Self {
        LinkSpec {
            base: SimDuration::from_millis(base_ms),
            jitter_mean: SimDuration::from_millis((base_ms / 10).max(1)),
            loss: 0.0,
        }
    }

    /// A fast intra-datacenter link (250 µs base, 50 µs jitter, lossless).
    pub fn local() -> Self {
        LinkSpec {
            base: SimDuration::from_micros(250),
            jitter_mean: SimDuration::from_micros(50),
            loss: 0.0,
        }
    }

    /// Returns a copy with the given loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not within `[0, 1]`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.loss = loss;
        self
    }
}

/// Symmetric matrix of [`LinkSpec`]s between regions.
///
/// Lookups are symmetric: the spec for `(a, b)` also answers `(b, a)`.
/// Unspecified pairs fall back to [`LatencyMatrix::default_link`].
#[derive(Debug, Clone)]
pub struct LatencyMatrix {
    links: BTreeMap<(Region, Region), LinkSpec>,
    default_link: LinkSpec,
    local_link: LinkSpec,
}

impl Default for LatencyMatrix {
    fn default() -> Self {
        LatencyMatrix::paper_wan()
    }
}

impl LatencyMatrix {
    /// An empty matrix where every inter-region link uses `default_link`.
    pub fn uniform(default_link: LinkSpec) -> Self {
        LatencyMatrix { links: BTreeMap::new(), default_link, local_link: LinkSpec::local() }
    }

    /// The WAN the paper ran on.
    ///
    /// Coordinator links reproduce the paper's measured RTTs exactly
    /// (one-way = RTT/2): Virginia–Oregon 136 ms, Virginia–Tokyo 218 ms,
    /// Virginia–Ireland 172 ms. Inter-agent links use representative
    /// inter-AZ figures of the period.
    pub fn paper_wan() -> Self {
        let mut m = LatencyMatrix::uniform(LinkSpec::wan_ms(60));
        m.set(Region::Virginia, Region::Oregon, LinkSpec::wan_ms(68));
        m.set(Region::Virginia, Region::Tokyo, LinkSpec::wan_ms(109));
        m.set(Region::Virginia, Region::Ireland, LinkSpec::wan_ms(86));
        m.set(Region::Oregon, Region::Tokyo, LinkSpec::wan_ms(48));
        m.set(Region::Oregon, Region::Ireland, LinkSpec::wan_ms(70));
        m.set(Region::Tokyo, Region::Ireland, LinkSpec::wan_ms(120));
        m
    }

    /// Sets the spec for an unordered region pair.
    pub fn set(&mut self, a: Region, b: Region, spec: LinkSpec) -> &mut Self {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.links.insert(key, spec);
        self
    }

    /// Overrides the intra-region link spec.
    pub fn set_local(&mut self, spec: LinkSpec) -> &mut Self {
        self.local_link = spec;
        self
    }

    /// The spec used for pairs with no explicit entry.
    pub fn default_link(&self) -> LinkSpec {
        self.default_link
    }

    /// Looks up the spec for a (possibly intra-region) pair.
    pub fn link(&self, a: Region, b: Region) -> LinkSpec {
        if a == b {
            return self.local_link;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        self.links.get(&key).copied().unwrap_or(self.default_link)
    }

    /// Samples a one-way delay for a message from `a` to `b`.
    pub fn sample_delay(&self, a: Region, b: Region, rng: &mut SimRng) -> SimDuration {
        let spec = self.link(a, b);
        let jitter = rng.gen_exp(spec.jitter_mean.as_nanos() as f64);
        spec.base + SimDuration::from_nanos(jitter.round() as u64)
    }

    /// Samples whether a message from `a` to `b` is lost.
    pub fn sample_loss(&self, a: Region, b: Region, rng: &mut SimRng) -> bool {
        let spec = self.link(a, b);
        spec.loss > 0.0 && rng.gen_bool(spec.loss)
    }

    /// Returns a copy with the given loss probability applied to every
    /// link, including the intra-region and fallback links.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not within `[0, 1]`.
    pub fn with_loss_everywhere(mut self, loss: f64) -> Self {
        self.default_link = self.default_link.with_loss(loss);
        self.local_link = self.local_link.with_loss(loss);
        for spec in self.links.values_mut() {
            *spec = spec.with_loss(loss);
        }
        self
    }
}

/// A scheduled bidirectional partition between two sets of nodes.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    /// Nodes on one side of the partition.
    pub side_a: Vec<NodeId>,
    /// Nodes on the other side.
    pub side_b: Vec<NodeId>,
    /// Partition start (inclusive).
    pub start: SimTime,
    /// Partition end (exclusive).
    pub end: SimTime,
}

impl PartitionSpec {
    /// Whether a message sent from `src` to `dst` at time `at` is blocked.
    pub fn blocks(&self, src: NodeId, dst: NodeId, at: SimTime) -> bool {
        if at < self.start || at >= self.end {
            return false;
        }
        (self.side_a.contains(&src) && self.side_b.contains(&dst))
            || (self.side_b.contains(&src) && self.side_a.contains(&dst))
    }
}

/// Full network configuration: latency matrix, active partitions, and
/// scheduled fault-plan link effects.
#[derive(Debug, Clone, Default)]
pub struct NetworkConfig {
    /// The latency/loss matrix.
    pub matrix: LatencyMatrix,
    /// Scheduled partitions.
    pub partitions: Vec<PartitionSpec>,
    /// Compiled fault-plan windows (see [`crate::faults::FaultPlan`]).
    pub effects: Vec<LinkEffect>,
    /// Seed for the world's dedicated fault random stream (the plan's
    /// seed). Drop and extra-delay sampling for `effects` draws from that
    /// stream only, so configurations without effects are unperturbed.
    pub fault_seed: u64,
}

impl NetworkConfig {
    /// Creates a configuration with the given matrix and no partitions.
    pub fn new(matrix: LatencyMatrix) -> Self {
        NetworkConfig { matrix, ..NetworkConfig::default() }
    }

    /// Adds a partition window.
    pub fn add_partition(&mut self, spec: PartitionSpec) -> &mut Self {
        self.partitions.push(spec);
        self
    }

    /// Adds a compiled fault-plan link effect.
    pub fn add_effect(&mut self, effect: LinkEffect) -> &mut Self {
        self.effects.push(effect);
        self
    }

    /// Whether any partition blocks `src → dst` at `at`.
    pub fn is_blocked(&self, src: NodeId, dst: NodeId, at: SimTime) -> bool {
        self.partitions.iter().any(|p| p.blocks(src, dst, at))
    }

    /// Whether a fault-plan `Block` window covers an `a → b` message at
    /// `at`.
    pub fn fault_blocks(&self, a: Region, b: Region, at: SimTime) -> bool {
        self.effects.iter().any(|e| matches!(e.kind, EffectKind::Block) && e.applies(a, b, at))
    }

    /// The strongest active fault-plan loss probability for an `a → b`
    /// message at `at`, if any `Loss` window covers it.
    pub fn fault_loss(&self, a: Region, b: Region, at: SimTime) -> Option<f64> {
        self.effects
            .iter()
            .filter(|e| e.applies(a, b, at))
            .filter_map(|e| match e.kind {
                EffectKind::Loss(p) => Some(p),
                _ => None,
            })
            .fold(None, |acc, p| Some(acc.map_or(p, |a: f64| a.max(p))))
    }

    /// Samples the total extra delay from every active `ExtraDelay` window
    /// covering an `a → b` message at `at` (effects compose additively).
    pub fn fault_extra_delay(
        &self,
        a: Region,
        b: Region,
        at: SimTime,
        rng: &mut SimRng,
    ) -> SimDuration {
        let mut extra = SimDuration::ZERO;
        for e in &self.effects {
            if let EffectKind::ExtraDelay { base, jitter_mean } = e.kind {
                if e.applies(a, b, at) {
                    let jitter = rng.gen_exp(jitter_mean.as_nanos() as f64);
                    extra += base + SimDuration::from_nanos(jitter.round() as u64);
                }
            }
        }
        extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_labels_match_figures() {
        assert_eq!(Region::Oregon.short(), "OR");
        assert_eq!(Region::Tokyo.short(), "JP");
        assert_eq!(Region::Ireland.short(), "IR");
        assert_eq!(Region::Virginia.short(), "VA");
        assert_eq!(Region::Datacenter(3).short(), "DC3");
    }

    #[test]
    fn short_borrows_for_fixed_regions() {
        for r in Region::AGENTS.iter().chain([Region::Virginia].iter()) {
            assert!(matches!(r.short(), Cow::Borrowed(_)), "{r} should not allocate");
        }
        assert!(matches!(Region::Datacenter(0).short(), Cow::Owned(_)));
    }

    #[test]
    fn lookup_is_symmetric() {
        let m = LatencyMatrix::paper_wan();
        let a = m.link(Region::Virginia, Region::Tokyo);
        let b = m.link(Region::Tokyo, Region::Virginia);
        assert_eq!(a.base, b.base);
        assert_eq!(a.base, SimDuration::from_millis(109));
    }

    #[test]
    fn paper_rtts_match_measurements() {
        // One-way × 2 should give the RTTs reported in the paper, §V.
        let m = LatencyMatrix::paper_wan();
        for (region, rtt_ms) in
            [(Region::Oregon, 136), (Region::Tokyo, 218), (Region::Ireland, 172)]
        {
            let one_way = m.link(Region::Virginia, region).base;
            assert_eq!(one_way.as_millis() * 2, rtt_ms);
        }
    }

    #[test]
    fn intra_region_is_fast() {
        let m = LatencyMatrix::paper_wan();
        assert!(m.link(Region::Oregon, Region::Oregon).base < SimDuration::from_millis(1));
    }

    #[test]
    fn unknown_pair_uses_default() {
        let m = LatencyMatrix::paper_wan();
        let d = m.link(Region::Datacenter(0), Region::Datacenter(1));
        assert_eq!(d.base, m.default_link().base);
    }

    #[test]
    fn sampled_delay_at_least_base() {
        let m = LatencyMatrix::paper_wan();
        let mut rng = SimRng::new(1);
        for _ in 0..200 {
            let d = m.sample_delay(Region::Oregon, Region::Ireland, &mut rng);
            assert!(d >= SimDuration::from_millis(70));
            assert!(d < SimDuration::from_millis(300), "pathological jitter: {d}");
        }
    }

    #[test]
    fn loss_is_sampled() {
        let mut m = LatencyMatrix::uniform(LinkSpec::wan_ms(10).with_loss(1.0));
        m.set(Region::Oregon, Region::Tokyo, LinkSpec::wan_ms(10)); // lossless
        let mut rng = SimRng::new(2);
        assert!(m.sample_loss(Region::Oregon, Region::Ireland, &mut rng));
        assert!(!m.sample_loss(Region::Oregon, Region::Tokyo, &mut rng));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn with_loss_validates() {
        let _ = LinkSpec::wan_ms(10).with_loss(1.5);
    }

    #[test]
    fn partitions_block_both_directions_within_window() {
        let p = PartitionSpec {
            side_a: vec![NodeId(0)],
            side_b: vec![NodeId(1), NodeId(2)],
            start: SimTime::from_secs(10),
            end: SimTime::from_secs(20),
        };
        let mid = SimTime::from_secs(15);
        assert!(p.blocks(NodeId(0), NodeId(1), mid));
        assert!(p.blocks(NodeId(2), NodeId(0), mid));
        assert!(!p.blocks(NodeId(1), NodeId(2), mid)); // same side
        assert!(!p.blocks(NodeId(0), NodeId(1), SimTime::from_secs(9)));
        assert!(!p.blocks(NodeId(0), NodeId(1), SimTime::from_secs(20))); // end exclusive
    }

    #[test]
    fn fault_effects_window_and_compose() {
        use crate::faults::{EffectKind, LinkEffect, LinkScope};
        let mut cfg = NetworkConfig::new(LatencyMatrix::paper_wan());
        cfg.add_effect(LinkEffect {
            scope: LinkScope::Between(Region::Oregon, Region::Tokyo),
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(2),
            kind: EffectKind::Block,
        });
        cfg.add_effect(LinkEffect {
            scope: LinkScope::Touching(Region::Tokyo),
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(3),
            kind: EffectKind::Loss(0.25),
        });
        cfg.add_effect(LinkEffect {
            scope: LinkScope::All,
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(3),
            kind: EffectKind::Loss(0.75),
        });
        let mid = SimTime::from_millis(1_500);
        assert!(cfg.fault_blocks(Region::Oregon, Region::Tokyo, mid));
        assert!(cfg.fault_blocks(Region::Tokyo, Region::Oregon, mid), "symmetric");
        assert!(!cfg.fault_blocks(Region::Oregon, Region::Tokyo, SimTime::from_secs(2)));
        assert!(!cfg.fault_blocks(Region::Oregon, Region::Ireland, mid));
        // Overlapping loss windows: the strongest applies.
        assert_eq!(cfg.fault_loss(Region::Oregon, Region::Tokyo, mid), Some(0.75));
        assert_eq!(cfg.fault_loss(Region::Oregon, Region::Tokyo, SimTime::from_secs(4)), None);
        // Extra delay comes only from ExtraDelay windows.
        let mut rng = SimRng::new(1);
        assert!(cfg.fault_extra_delay(Region::Oregon, Region::Tokyo, mid, &mut rng).is_zero());
        cfg.add_effect(LinkEffect {
            scope: LinkScope::All,
            start: SimTime::ZERO,
            end: SimTime::from_secs(10),
            kind: EffectKind::ExtraDelay {
                base: SimDuration::from_millis(100),
                jitter_mean: SimDuration::from_millis(10),
            },
        });
        let d = cfg.fault_extra_delay(Region::Oregon, Region::Tokyo, mid, &mut rng);
        assert!(d >= SimDuration::from_millis(100));
    }

    #[test]
    fn network_config_aggregates_partitions() {
        let mut cfg = NetworkConfig::new(LatencyMatrix::paper_wan());
        cfg.add_partition(PartitionSpec {
            side_a: vec![NodeId(3)],
            side_b: vec![NodeId(4)],
            start: SimTime::ZERO,
            end: SimTime::from_secs(1),
        });
        assert!(cfg.is_blocked(NodeId(3), NodeId(4), SimTime::from_millis(500)));
        assert!(!cfg.is_blocked(NodeId(3), NodeId(5), SimTime::from_millis(500)));
    }
}
