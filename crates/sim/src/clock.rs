//! Per-node local clocks with offset and drift.
//!
//! The paper disables NTP on its agents and runs a custom Cristian-style
//! synchronization protocol from the coordinator, because an uncontrolled
//! clock adjustment mid-test would corrupt divergence-window measurements.
//! We model the same situation: each node's clock is a linear function of
//! true simulation time with a fixed initial offset and a constant drift
//! rate. Nodes can only read their local clock; the harness must estimate
//! deltas over the (simulated) network exactly like the paper does.

use crate::rng::SimRng;
use crate::time::SimTime;
use std::fmt;

/// A reading of some node's local clock, in nanoseconds on that node's own
/// timeline. Distinct from [`SimTime`] so the type system prevents mixing
/// local readings from different nodes, or local readings with true time,
/// without an explicit conversion through an estimated delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LocalTime(i64);

impl LocalTime {
    /// Constructs a local reading from raw nanoseconds.
    pub const fn from_nanos(ns: i64) -> Self {
        LocalTime(ns)
    }

    /// Raw nanoseconds of this reading.
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// Signed difference `self - other` in nanoseconds.
    pub const fn delta_nanos(self, other: LocalTime) -> i64 {
        self.0 - other.0
    }

    /// Shifts this reading by a signed number of nanoseconds.
    pub const fn offset_by(self, nanos: i64) -> LocalTime {
        LocalTime(self.0 + nanos)
    }
}

impl fmt::Display for LocalTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "local:{:.6}s", self.0 as f64 / 1e9)
    }
}

/// Configuration for generating node clocks.
#[derive(Debug, Clone)]
pub struct ClockConfig {
    /// Maximum absolute initial offset from true time, in nanoseconds.
    /// Offsets are drawn uniformly from `[-max, +max]`.
    pub max_initial_offset_nanos: i64,
    /// Maximum absolute drift in parts per million. Drift rates are drawn
    /// uniformly from `[-max, +max]`.
    pub max_drift_ppm: f64,
}

impl Default for ClockConfig {
    /// Defaults: up to ±2 s initial offset and ±50 ppm drift — generous for
    /// unmanaged VMs with NTP disabled, per the paper's setup.
    fn default() -> Self {
        ClockConfig { max_initial_offset_nanos: 2_000_000_000, max_drift_ppm: 50.0 }
    }
}

impl ClockConfig {
    /// A configuration with perfectly synchronized, drift-free clocks.
    pub fn perfect() -> Self {
        ClockConfig { max_initial_offset_nanos: 0, max_drift_ppm: 0.0 }
    }
}

/// A node's local clock: `local(t) = t + offset + drift_ppm * 1e-6 * t`.
#[derive(Debug, Clone)]
pub struct LocalClock {
    offset_nanos: i64,
    drift_ppm: f64,
}

impl LocalClock {
    /// Creates a clock with an explicit offset (nanoseconds) and drift (ppm).
    pub fn new(offset_nanos: i64, drift_ppm: f64) -> Self {
        LocalClock { offset_nanos, drift_ppm }
    }

    /// A perfect clock that reads true time exactly.
    pub fn perfect() -> Self {
        LocalClock::new(0, 0.0)
    }

    /// Samples a clock according to `config`.
    pub fn sample(config: &ClockConfig, rng: &mut SimRng) -> Self {
        let offset = if config.max_initial_offset_nanos == 0 {
            0
        } else {
            rng.gen_range(-config.max_initial_offset_nanos..=config.max_initial_offset_nanos)
        };
        let drift = if config.max_drift_ppm == 0.0 {
            0.0
        } else {
            rng.gen_range(-config.max_drift_ppm..=config.max_drift_ppm)
        };
        LocalClock::new(offset, drift)
    }

    /// Reads the local clock at true time `now`.
    pub fn read(&self, now: SimTime) -> LocalTime {
        let t = now.as_nanos() as f64;
        let drift_component = (self.drift_ppm * 1e-6 * t).round() as i64;
        LocalTime(now.as_nanos() as i64 + self.offset_nanos + drift_component)
    }

    /// The true offset of this clock at true time `now`, in nanoseconds
    /// (local − true). Exposed for ablation experiments that compare the
    /// harness's *estimated* delta against ground truth.
    pub fn true_offset_nanos(&self, now: SimTime) -> i64 {
        self.read(now).as_nanos() - now.as_nanos() as i64
    }

    /// The configured drift rate, in ppm.
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ppm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_reads_true_time() {
        let c = LocalClock::perfect();
        let t = SimTime::from_secs(5);
        assert_eq!(c.read(t).as_nanos(), t.as_nanos() as i64);
        assert_eq!(c.true_offset_nanos(t), 0);
    }

    #[test]
    fn offset_shifts_readings() {
        let c = LocalClock::new(1_000_000, 0.0);
        assert_eq!(c.read(SimTime::ZERO).as_nanos(), 1_000_000);
        assert_eq!(c.true_offset_nanos(SimTime::from_secs(100)), 1_000_000);
    }

    #[test]
    fn drift_accumulates_linearly() {
        // 100 ppm drift over 10 s => 1 ms ahead.
        let c = LocalClock::new(0, 100.0);
        let t = SimTime::from_secs(10);
        assert_eq!(c.true_offset_nanos(t), 1_000_000);
        assert!(c.drift_ppm() == 100.0);
    }

    #[test]
    fn negative_drift_falls_behind() {
        let c = LocalClock::new(0, -100.0);
        assert_eq!(c.true_offset_nanos(SimTime::from_secs(10)), -1_000_000);
    }

    #[test]
    fn sample_respects_bounds() {
        let cfg = ClockConfig { max_initial_offset_nanos: 1_000, max_drift_ppm: 5.0 };
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            let c = LocalClock::sample(&cfg, &mut rng);
            assert!(c.true_offset_nanos(SimTime::ZERO).abs() <= 1_000);
            assert!(c.drift_ppm().abs() <= 5.0);
        }
    }

    #[test]
    fn sample_perfect_config_is_exact() {
        let mut rng = SimRng::new(3);
        let c = LocalClock::sample(&ClockConfig::perfect(), &mut rng);
        assert_eq!(c.true_offset_nanos(SimTime::from_secs(1000)), 0);
    }

    #[test]
    fn local_time_arithmetic() {
        let a = LocalTime::from_nanos(10);
        let b = LocalTime::from_nanos(4);
        assert_eq!(a.delta_nanos(b), 6);
        assert_eq!(b.offset_by(6), a);
        assert_eq!(a.to_string(), "local:0.000000s");
    }
}
