//! Virtual time newtypes.
//!
//! True simulation time ([`SimTime`]) is a count of nanoseconds since the
//! start of the run. Nodes never observe it directly (they read their
//! [`crate::clock::LocalClock`] instead); it exists for the event loop and
//! for instrumentation/ablation code that needs ground truth.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the true (hidden) simulation timeline, in
/// nanoseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs an instant from raw nanoseconds since the start of the run.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs an instant from milliseconds since the start of the run.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs an instant from whole seconds since the start of the run.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the start of the run (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the start of the run, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is in the future, mirroring
    /// `std::time::Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be finite and non-negative");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in this duration (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Divides the duration by an integer divisor.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub const fn div(self, divisor: u64) -> Self {
        SimDuration(self.0 / divisor)
    }

    /// Scales the duration by a non-negative float factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be finite and non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(100) + SimDuration::from_millis(50);
        assert_eq!(t.as_millis(), 150);
        assert_eq!(t.saturating_since(SimTime::from_millis(100)).as_millis(), 50);
        assert_eq!(SimTime::from_millis(10).saturating_since(t), SimDuration::ZERO);
        assert_eq!(t.checked_since(SimTime::from_millis(200)), None);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(300);
        assert_eq!(d.mul_f64(2.0).as_millis(), 600);
        assert_eq!(d.saturating_mul(3).as_millis(), 900);
        assert_eq!(d.div(3).as_millis(), 100);
        assert!(SimDuration::ZERO.is_zero());
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000000015).as_nanos(), 2);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimDuration::from_nanos(10).to_string(), "10ns");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "t+1.000000s");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_nanos(1) < SimDuration::from_micros(1));
    }
}
