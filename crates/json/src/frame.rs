//! `cpj1` record framing — the workspace's one length-prefixed,
//! checksummed line format.
//!
//! The campaign journal introduced the format (one record per line,
//! corruption-detecting); the quorum backend's state-transfer stream
//! reuses it verbatim so a catch-up payload is checkable with the same
//! tooling as a journal line:
//!
//! ```text
//! cpj1 <payload-len> <fnv64-hex-16> <payload>\n
//! ```
//!
//! * `cpj1` — format magic/version.
//! * `<payload-len>` — decimal byte length of the payload.
//! * `<fnv64-hex-16>` — 16-digit lowercase FNV-1a hash of the payload.
//! * `<payload>` — opaque bytes that contain no raw newline (compact
//!   JSON satisfies this by construction).
//!
//! This module lives in the dependency-free JSON crate so every layer
//! (harness journal, services state transfer, bench fingerprints) frames
//! records identically without new edges in the crate graph.

use std::fmt;

/// Format magic for v1 records.
pub const MAGIC: &str = "cpj1";

/// The FNV-1a offset basis (the running-hash seed for [`fnv64_fold`]).
pub const FNV64_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over a byte string. Stable across platforms and releases: the
/// campaign journal, the golden-fingerprint suite and the state-transfer
/// stream hash all depend on these exact constants.
pub fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_fold(FNV64_BASIS, bytes)
}

/// Folds `bytes` into a running FNV-1a state — `fnv64(b)` is
/// `fnv64_fold(FNV64_BASIS, b)`, and hashing a concatenation is folding
/// the pieces in order.
pub fn fnv64_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Why a line failed to decode as a `cpj1` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The line does not start with the `cpj1` magic.
    BadMagic {
        /// What was found where the magic belongs.
        found: String,
    },
    /// A header field is missing or unparsable.
    Malformed {
        /// Which field (`"length"`, `"checksum"`, `"payload"`).
        field: &'static str,
    },
    /// The framed length disagrees with the actual payload length.
    LengthMismatch {
        /// Length claimed by the frame header.
        framed: usize,
        /// Actual payload byte count.
        actual: usize,
    },
    /// The framed checksum disagrees with the payload's hash.
    ChecksumMismatch {
        /// Checksum claimed by the frame header.
        framed: u64,
        /// Actual payload hash.
        actual: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic { found } => {
                write!(f, "bad magic {found:?} (expected {MAGIC:?})")
            }
            FrameError::Malformed { field } => write!(f, "missing or unparsable {field} field"),
            FrameError::LengthMismatch { framed, actual } => {
                write!(f, "length mismatch: framed {framed}, actual {actual}")
            }
            FrameError::ChecksumMismatch { framed, actual } => {
                write!(f, "checksum mismatch: framed {framed:016x}, actual {actual:016x}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Frames one payload as a `cpj1` line, newline included. The payload
/// must not contain a raw newline (compact JSON never does); the frame
/// does not check, because the decoder's length field catches it.
pub fn encode_record(payload: &str) -> String {
    format!("{MAGIC} {} {:016x} {payload}\n", payload.len(), fnv64(payload.as_bytes()))
}

/// Decodes one framed line (with or without its trailing newline) back
/// into its payload, verifying length and checksum.
pub fn decode_record(line: &str) -> Result<&str, FrameError> {
    let line = line.strip_suffix('\n').unwrap_or(line);
    let mut parts = line.splitn(4, ' ');
    let magic = parts.next().unwrap_or("");
    if magic != MAGIC {
        return Err(FrameError::BadMagic { found: magic.to_string() });
    }
    let len: usize = parts
        .next()
        .ok_or(FrameError::Malformed { field: "length" })?
        .parse()
        .map_err(|_| FrameError::Malformed { field: "length" })?;
    let hash = parts.next().ok_or(FrameError::Malformed { field: "checksum" }).and_then(|s| {
        u64::from_str_radix(s, 16).map_err(|_| FrameError::Malformed { field: "checksum" })
    })?;
    let payload = parts.next().ok_or(FrameError::Malformed { field: "payload" })?;
    if payload.len() != len {
        return Err(FrameError::LengthMismatch { framed: len, actual: payload.len() });
    }
    let actual = fnv64(payload.as_bytes());
    if actual != hash {
        return Err(FrameError::ChecksumMismatch { framed: hash, actual });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a 64-bit vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fold_composes() {
        let h = fnv64_fold(fnv64_fold(FNV64_BASIS, b"foo"), b"bar");
        assert_eq!(h, fnv64(b"foobar"));
    }

    #[test]
    fn round_trip() {
        let payload = r#"{"cell":"blogger/test1","instance":0}"#;
        let line = encode_record(payload);
        assert!(line.ends_with('\n'));
        assert_eq!(decode_record(&line).unwrap(), payload);
        assert_eq!(decode_record(line.trim_end()).unwrap(), payload);
    }

    #[test]
    fn empty_payload_round_trips() {
        let line = encode_record("");
        assert_eq!(decode_record(&line).unwrap(), "");
    }

    #[test]
    fn payload_may_contain_spaces() {
        let payload = "a b c  d";
        assert_eq!(decode_record(&encode_record(payload)).unwrap(), payload);
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(
            decode_record("cpj2 1 00af63dc4c8601ec8c a"),
            Err(FrameError::BadMagic { found: "cpj2".into() })
        );
    }

    #[test]
    fn rejects_truncation_and_corruption() {
        let line = encode_record("payload");
        // Truncated payload: length mismatch.
        let cut = &line[..line.len() - 3];
        assert!(matches!(decode_record(cut), Err(FrameError::LengthMismatch { .. })));
        // Flipped payload byte: checksum mismatch.
        let flipped = line.replace("payload", "paYload");
        assert!(matches!(decode_record(&flipped), Err(FrameError::ChecksumMismatch { .. })));
        // Missing fields.
        assert!(matches!(decode_record("cpj1 7"), Err(FrameError::Malformed { .. })));
        assert!(matches!(decode_record("cpj1 x y z"), Err(FrameError::Malformed { .. })));
    }

    #[test]
    fn error_messages_are_descriptive() {
        let err = decode_record("cpj1 2 0000000000000000 ab").unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"));
    }
}
