//! # conprobe-json — a minimal, dependency-free JSON layer
//!
//! The workspace must build and test without network access, so it cannot
//! pull `serde`/`serde_json` from a registry. This crate supplies the small
//! slice of JSON functionality conprobe actually needs: a [`JsonValue`]
//! document model, a strict recursive-descent [`parse`] function, compact and
//! pretty writers, and the [`ToJson`]/[`FromJson`] conversion traits the rest
//! of the workspace implements by hand for its (few) serialized types.
//!
//! Design notes:
//!
//! * Object members preserve insertion order (a `Vec` of pairs, not a map),
//!   so writers emit fields in the order the `ToJson` impl listed them and a
//!   serialize→parse→serialize round trip is a fixpoint.
//! * Numbers keep their integer-ness: `Int`/`UInt` survive round trips
//!   exactly; only values written with a decimal point or exponent parse as
//!   `Float`. This matters for 64-bit seeds and nanosecond timestamps that
//!   exceed `f64`'s 53-bit integer range.
//! * The parser is strict (no trailing commas, no comments, no NaN/Infinity)
//!   and recursion-limited so hostile inputs fail cleanly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;

use std::fmt;

/// A parsed or constructed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer that fits `i64`.
    Int(i64),
    /// An unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Any other finite number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; members keep insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(n) => Some(*n),
            JsonValue::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(n) => u64::try_from(*n).ok(),
            JsonValue::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(n) => Some(*n as f64),
            JsonValue::UInt(n) => Some(*n as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Serializes without whitespace.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, None, 0, &mut out);
        out
    }

    /// Serializes with 2-space indentation (the `serde_json` pretty style).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, Some(2), 0, &mut out);
        out
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// A schema-level error (shape mismatch rather than syntax).
    pub fn schema(message: impl Into<String>) -> Self {
        JsonError { offset: 0, message: message.into() }
    }
}

/// Types that can render themselves as a [`JsonValue`].
pub trait ToJson {
    /// Converts to a document-model value.
    fn to_json(&self) -> JsonValue;
}

/// Types that can reconstruct themselves from a [`JsonValue`].
pub trait FromJson: Sized {
    /// Converts from a document-model value.
    ///
    /// # Errors
    ///
    /// Returns a schema [`JsonError`] when the value has the wrong shape.
    fn from_json(v: &JsonValue) -> Result<Self, JsonError>;
}

/// Fetches a required object member, with a schema error naming the key.
pub fn member<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, JsonError> {
    v.get(key).ok_or_else(|| JsonError::schema(format!("missing member `{key}`")))
}

fn uint_to_json(n: u64) -> JsonValue {
    if n <= i64::MAX as u64 {
        JsonValue::Int(n as i64)
    } else {
        JsonValue::UInt(n)
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> JsonValue {
                uint_to_json(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
                match v {
                    JsonValue::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| JsonError::schema("integer out of range")),
                    JsonValue::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| JsonError::schema("integer out of range")),
                    _ => Err(JsonError::schema(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

int_impls!(u32, u64, usize);

impl ToJson for i64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Int(*self)
    }
}

impl FromJson for i64 {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_i64().ok_or_else(|| JsonError::schema("expected i64"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::schema("expected number"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::schema("expected bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string).ok_or_else(|| JsonError::schema("expected string"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::schema("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(t) => t.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::schema("expected 2-element array")),
        }
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &JsonValue, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Int(n) => out.push_str(&n.to_string()),
        JsonValue::UInt(n) => out.push_str(&n.to_string()),
        JsonValue::Float(f) => write_float(*f, out),
        JsonValue::Str(s) => write_string(s, out),
        JsonValue::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        JsonValue::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
        out.push_str("null");
        return;
    }
    // `{}` on f64 is the shortest representation that round-trips, but drops
    // the decimal point for whole numbers; keep `.0` so the value re-parses
    // as Float and serialization stays a fixpoint.
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first syntax problem,
/// including trailing garbage after the top-level value.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a low surrogate.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid code point"))?);
                            // hex4 leaves pos past the digits; compensate for
                            // the `self.pos += 1` below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    // Input is a &str, so the slice is valid UTF-8.
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(JsonValue::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| JsonError { offset: start, message: "invalid number".into() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Int(42));
        assert_eq!(parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(parse("1.5").unwrap(), JsonValue::Float(1.5));
        assert_eq!(parse("2e3").unwrap(), JsonValue::Float(2000.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn big_u64_survives() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v, JsonValue::UInt(u64::MAX));
        assert_eq!(v.to_compact(), "18446744073709551615");
        assert_eq!(u64::from_json(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn nested_structures_round_trip() {
        let src = r#"{"a":[1,2,{"b":null}],"c":{"d":true},"e":-1.25,"f":"x\ny"}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_compact(), src);
        let re = parse(&v.to_pretty()).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn pretty_matches_expected_shape() {
        let v = parse(r#"{"k":[1]}"#).unwrap();
        assert_eq!(v.to_pretty(), "{\n  \"k\": [\n    1\n  ]\n}");
        assert_eq!(parse("[]").unwrap().to_pretty(), "[]");
        assert_eq!(parse("{}").unwrap().to_pretty(), "{}");
    }

    #[test]
    fn floats_reparse_as_floats() {
        let v = JsonValue::Float(3.0);
        assert_eq!(v.to_compact(), "3.0");
        assert_eq!(parse("3.0").unwrap(), JsonValue::Float(3.0));
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v, JsonValue::Str("a\"b\\cAé😀".into()));
        let round = parse(&v.to_compact()).unwrap();
        assert_eq!(round, v);
        assert_eq!(JsonValue::Str("\u{1}".into()).to_compact(), "\"\\u0001\"");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "tru",
            "[1,",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "[1] garbage",
            "{'a':1}",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    /// A tiny deterministic LCG so the fuzz corpus is reproducible
    /// without any wall-clock or OS entropy.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }

    /// Corrupt/adversarial input must yield `Err`, never a panic or a
    /// stack overflow. This is the journal's trust boundary: recovery
    /// feeds disk bytes of unknown provenance straight into `parse`.
    #[test]
    fn parse_never_panics_on_arbitrary_input() {
        let mut rng = Lcg(0x5EED);
        // Alphabet biased toward JSON structure so inputs get deep into
        // the parser instead of failing on the first byte.
        let alphabet: &[u8] = br#"{}[]",:.0123456789-+eE\truefalsn ulx"#;
        for len in 0..200usize {
            let s: String = (0..len)
                .map(|_| alphabet[(rng.next() as usize) % alphabet.len()] as char)
                .collect();
            let _ = parse(&s); // must return, Ok or Err
        }
        // Raw high-byte / invalid-UTF-8-adjacent content via char soup.
        for _ in 0..500 {
            let len = (rng.next() % 64) as usize;
            let s: String = (0..len)
                .map(|_| char::from_u32((rng.next() % 0xD7FF) as u32).unwrap_or('\u{FFFD}'))
                .collect();
            let _ = parse(&s);
        }
    }

    /// Every prefix of a valid document — a torn write, exactly what a
    /// crashed journal append leaves behind — parses or errors cleanly,
    /// and so does the document with any single byte flipped.
    #[test]
    fn parse_never_panics_on_truncated_or_mutated_valid_documents() {
        let doc = r#"{"cell":"blogger/test1","instance":3,"seed":1844674407370955,
            "status":"completed","result":{"trace":[{"agent":0,"op":"w","at":-1.5e3,
            "key":[1,2],"vals":["a","b",null,true,false]}],"nested":{"deep":[[[{"x":1}]]]}}}"#;
        assert!(parse(doc).is_ok());
        for cut in 0..doc.len() {
            if let Some(prefix) = doc.get(..cut) {
                let _ = parse(prefix);
            }
        }
        let bytes = doc.as_bytes();
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80] {
                let mut mutated = bytes.to_vec();
                mutated[i] ^= flip;
                if let Ok(s) = std::str::from_utf8(&mutated) {
                    let _ = parse(s);
                }
            }
        }
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n":3,"s":"x","b":false,"a":[1,2]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("missing").is_none());
        assert!(member(&v, "missing").is_err());
    }

    #[test]
    fn trait_impls_round_trip() {
        let xs: Vec<u64> = vec![1, 2, u64::MAX];
        assert_eq!(Vec::<u64>::from_json(&xs.to_json()).unwrap(), xs);
        let opt: Option<String> = Some("hi".into());
        assert_eq!(Option::<String>::from_json(&opt.to_json()).unwrap(), opt);
        let none: Option<String> = None;
        assert_eq!(Option::<String>::from_json(&none.to_json()).unwrap(), none);
        let pair: (u32, f64) = (7, 0.5);
        assert_eq!(<(u32, f64)>::from_json(&pair.to_json()).unwrap(), pair);
        assert!(u32::from_json(&JsonValue::Int(-1)).is_err());
        assert!(u32::from_json(&JsonValue::Str("x".into())).is_err());
    }
}
