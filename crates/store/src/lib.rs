//! # conprobe-store — replication substrate for the simulated services
//!
//! The paper treats each online service as a black box, but reproducing the
//! paper requires *building* those black boxes. This crate provides the
//! reusable machinery the four service models in `conprobe-services` are
//! assembled from:
//!
//! * [`event`] — posts and their identifiers (the "writes" of the paper's
//!   model: each write creates an event inserted into the service state).
//! * [`ordering`] — policies that decide the sequence a read returns,
//!   including the *timestamp with 1-second precision and reversed
//!   tie-breaking* rule the paper reverse-engineered from Facebook Group.
//! * [`replica`] — a replica's state machine: apply, deduplicate, snapshot,
//!   digest/diff for anti-entropy, canonical re-sequencing.
//! * [`frontend`] — per-datacenter read caches with refresh intervals (the
//!   mechanism behind read-your-writes/monotonic-reads violations in the
//!   Google+ model).
//! * [`ranking`] — interest-score feed selection with per-read noise and
//!   top-K truncation (the mechanism behind Facebook Feed's near-universal
//!   order divergence: "the reply to a read contains a subset of the writes
//!   … based on a criteria that depends on the expected interest").
//! * [`routing`] — client-region → replica affinity maps (Oregon and Tokyo
//!   sharing a datacenter in the Google+ model, Tokyo isolated in the
//!   Facebook Group model).
//!
//! Everything here is pure state-machine logic — no event loop, no I/O —
//! which keeps it unit- and property-testable in isolation. The `Node`
//! implementations that wire these pieces to the simulator live in
//! `conprobe-services`.
//!
//! ## Example: the Facebook Group reversal in three lines
//!
//! ```
//! use conprobe_store::{OrderingPolicy, ReplicaCore, Post, PostId, AuthorId};
//! use conprobe_sim::{LocalTime, SimTime};
//!
//! let mut replica = ReplicaCore::new(OrderingPolicy::facebook_group());
//! // Two writes by the same author, 300 ms apart — same one-second bucket.
//! let m1 = Post::new(PostId::new(AuthorId(1), 1), "first", LocalTime::from_nanos(0));
//! let m2 = Post::new(PostId::new(AuthorId(1), 2), "second", LocalTime::from_nanos(0));
//! replica.apply_new(m1.clone(), SimTime::from_millis(1_100));
//! replica.apply_new(m2.clone(), SimTime::from_millis(1_400));
//! // The reversed tie-break presents them backwards — to every reader.
//! assert_eq!(replica.snapshot().to_vec(), vec![m2.id, m1.id]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod frontend;
pub mod ordering;
pub mod ranking;
pub mod replica;
pub mod routing;

pub use event::{AuthorId, Post, PostId, StoredPost};
pub use frontend::ReadCache;
pub use ordering::{OrderingPolicy, TieBreak};
pub use ranking::{FeedRanker, RankingConfig};
pub use replica::ReplicaCore;
pub use routing::AffinityMap;
