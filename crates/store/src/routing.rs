//! Client-region → replica affinity.
//!
//! Several of the paper's findings are explained by *which datacenter a
//! client talks to*: Google+ content divergence is much rarer (and resolves
//! much faster) between Oregon and Japan than between other pairs,
//! "suggest\[ing\] that the Oregon and the Japan agents are connecting to the
//! same data center"; in Facebook Group, "the agent in Japan may be
//! contacting a different replica than the remaining agents". An
//! [`AffinityMap`] encodes those assignments.

use conprobe_sim::net::Region;
use std::collections::BTreeMap;

/// Maps client regions to replica indices (indices are interpreted by the
/// service model that owns the map).
#[derive(Debug, Clone, Default)]
pub struct AffinityMap {
    assignments: BTreeMap<Region, usize>,
    fallback: usize,
}

impl AffinityMap {
    /// Creates an empty map whose unmatched regions route to replica 0.
    pub fn new() -> Self {
        AffinityMap::default()
    }

    /// Creates a map with an explicit fallback replica.
    pub fn with_fallback(fallback: usize) -> Self {
        AffinityMap { assignments: BTreeMap::new(), fallback }
    }

    /// Routes `region` to `replica`.
    pub fn assign(&mut self, region: Region, replica: usize) -> &mut Self {
        self.assignments.insert(region, replica);
        self
    }

    /// The replica index serving `region`.
    pub fn replica_for(&self, region: Region) -> usize {
        self.assignments.get(&region).copied().unwrap_or(self.fallback)
    }

    /// The Google+ model's affinity per the paper's inference: Oregon and
    /// Tokyo share replica 0 ("DC-West"); Ireland uses replica 1 ("DC-EU").
    pub fn gplus_paper() -> Self {
        let mut m = AffinityMap::new();
        m.assign(Region::Oregon, 0).assign(Region::Tokyo, 0).assign(Region::Ireland, 1);
        m
    }

    /// The Facebook Group model's affinity per the paper's inference:
    /// Oregon and Ireland on the main replica 0; Tokyo on replica 1.
    pub fn fbgroup_paper() -> Self {
        let mut m = AffinityMap::new();
        m.assign(Region::Oregon, 0).assign(Region::Ireland, 0).assign(Region::Tokyo, 1);
        m
    }

    /// One replica per agent region: Oregon→0, Tokyo→1, Ireland→2 (the
    /// Facebook Feed model, where divergence is uniform across pairs).
    pub fn one_per_agent() -> Self {
        let mut m = AffinityMap::new();
        m.assign(Region::Oregon, 0).assign(Region::Tokyo, 1).assign(Region::Ireland, 2);
        m
    }

    /// The number of distinct replicas referenced (including the fallback).
    pub fn replica_count(&self) -> usize {
        self.assignments.values().copied().chain(std::iter::once(self.fallback)).max().unwrap_or(0)
            + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallback_routes_unknown_regions() {
        let m = AffinityMap::with_fallback(2);
        assert_eq!(m.replica_for(Region::Virginia), 2);
    }

    #[test]
    fn gplus_affinity_matches_paper_inference() {
        let m = AffinityMap::gplus_paper();
        assert_eq!(m.replica_for(Region::Oregon), m.replica_for(Region::Tokyo));
        assert_ne!(m.replica_for(Region::Oregon), m.replica_for(Region::Ireland));
    }

    #[test]
    fn fbgroup_tokyo_is_isolated() {
        let m = AffinityMap::fbgroup_paper();
        assert_eq!(m.replica_for(Region::Oregon), m.replica_for(Region::Ireland));
        assert_ne!(m.replica_for(Region::Tokyo), m.replica_for(Region::Oregon));
    }

    #[test]
    fn one_per_agent_is_injective() {
        let m = AffinityMap::one_per_agent();
        let set: std::collections::HashSet<_> =
            Region::AGENTS.iter().map(|r| m.replica_for(*r)).collect();
        assert_eq!(set.len(), 3);
        assert_eq!(m.replica_count(), 3);
    }

    #[test]
    fn replica_count_includes_fallback() {
        let mut m = AffinityMap::with_fallback(0);
        m.assign(Region::Oregon, 4);
        assert_eq!(m.replica_count(), 5);
    }
}
