//! Ordering policies — how a replica sequences the events it returns.
//!
//! Two families are modelled:
//!
//! * [`OrderingPolicy::Arrival`] — events appear in the order the replica
//!   received them. Two replicas receiving concurrent writes over different
//!   paths order them differently, which is the root of *order divergence*
//!   (§III) in the Google+ model.
//! * [`OrderingPolicy::Timestamp`] — events are sorted by their server
//!   timestamp truncated to a configurable precision, with ties broken by a
//!   [`TieBreak`] rule. The Facebook Group model uses a **1-second
//!   precision** with [`TieBreak::ReversePostId`], reproducing the paper's
//!   finding: *"each event in Facebook Group is tagged with a timestamp that
//!   has a precision of one second, and whenever two write operations were
//!   issued by an agent within that interval … the effects of those
//!   operations would always be observed in reverse order."*

use crate::event::StoredPost;
use conprobe_sim::SimDuration;

/// Rule for ordering events whose (truncated) timestamps are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Ascending post id — stable, author-then-sequence order.
    PostId,
    /// Descending post id — the deterministic *reversing* rule the paper
    /// observed on Facebook Group for same-second writes.
    ReversePostId,
    /// Ascending arrival index at this replica.
    Arrival,
}

/// How a replica orders its event sequence for reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingPolicy {
    /// Order of arrival at this replica.
    Arrival,
    /// Server timestamp truncated to `precision`, ties broken by `tie`.
    Timestamp {
        /// Truncation granularity (e.g. one second for Facebook Group).
        precision: SimDuration,
        /// Tie-break rule within a truncated-timestamp bucket.
        tie: TieBreak,
    },
}

impl OrderingPolicy {
    /// The Facebook Group rule: 1-second timestamp buckets, reversed ties.
    pub fn facebook_group() -> Self {
        OrderingPolicy::Timestamp {
            precision: SimDuration::from_secs(1),
            tie: TieBreak::ReversePostId,
        }
    }

    /// Exact (nanosecond) timestamp order with stable id tie-break.
    pub fn exact_timestamp() -> Self {
        OrderingPolicy::Timestamp { precision: SimDuration::from_nanos(1), tie: TieBreak::PostId }
    }

    /// A sort key for `post` under this policy. Sorting by this key yields
    /// the policy's total order.
    pub fn sort_key(&self, post: &StoredPost) -> (u64, i64) {
        match self {
            OrderingPolicy::Arrival => (post.arrival_index, 0),
            OrderingPolicy::Timestamp { precision, tie } => {
                let p = precision.as_nanos().max(1);
                let bucket = post.server_ts.as_nanos() / p;
                let tie_key = match tie {
                    TieBreak::PostId => post.id().as_u64() as i64,
                    TieBreak::ReversePostId => -(post.id().as_u64() as i64),
                    TieBreak::Arrival => post.arrival_index as i64,
                };
                (bucket, tie_key)
            }
        }
    }

    /// Sorts `posts` in place according to this policy.
    pub fn sort(&self, posts: &mut [StoredPost]) {
        posts.sort_by_key(|p| self.sort_key(p));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AuthorId, Post, PostId};
    use conprobe_sim::{LocalTime, SimTime};

    fn stored(author: u32, seq: u32, server_ms: u64, arrival: u64) -> StoredPost {
        StoredPost {
            post: Post::new(
                PostId::new(AuthorId(author), seq),
                format!("m{author}-{seq}"),
                LocalTime::from_nanos(0),
            ),
            server_ts: SimTime::from_millis(server_ms),
            arrival_index: arrival,
        }
    }

    fn ids(posts: &[StoredPost]) -> Vec<String> {
        posts.iter().map(|p| p.id().to_string()).collect()
    }

    #[test]
    fn arrival_order_follows_arrival_index() {
        let mut v = vec![stored(1, 2, 500, 2), stored(1, 1, 900, 1), stored(2, 1, 100, 3)];
        OrderingPolicy::Arrival.sort(&mut v);
        assert_eq!(ids(&v), ["a1#1", "a1#2", "a2#1"]);
    }

    #[test]
    fn exact_timestamp_orders_by_time() {
        let mut v = vec![stored(1, 1, 900, 1), stored(2, 1, 100, 2), stored(1, 2, 500, 3)];
        OrderingPolicy::exact_timestamp().sort(&mut v);
        assert_eq!(ids(&v), ["a2#1", "a1#2", "a1#1"]);
    }

    #[test]
    fn facebook_group_reverses_same_second_writes() {
        // Two writes by the same author 300 ms apart: same 1-second bucket,
        // so the ReversePostId tie-break flips them — the paper's anomaly.
        let mut v = vec![stored(1, 1, 1100, 1), stored(1, 2, 1400, 2)];
        OrderingPolicy::facebook_group().sort(&mut v);
        assert_eq!(ids(&v), ["a1#2", "a1#1"]);
    }

    #[test]
    fn facebook_group_keeps_cross_second_writes_in_order() {
        let mut v = vec![stored(1, 1, 1100, 1), stored(1, 2, 2400, 2)];
        OrderingPolicy::facebook_group().sort(&mut v);
        assert_eq!(ids(&v), ["a1#1", "a1#2"]);
    }

    #[test]
    fn timestamp_bucket_boundary_is_exact() {
        // 1999 ms and 2000 ms are in different 1-second buckets.
        let mut v = vec![stored(1, 1, 1999, 1), stored(1, 2, 2000, 2)];
        OrderingPolicy::facebook_group().sort(&mut v);
        assert_eq!(ids(&v), ["a1#1", "a1#2"]);
    }

    #[test]
    fn arrival_tiebreak_within_bucket() {
        let policy = OrderingPolicy::Timestamp {
            precision: SimDuration::from_secs(1),
            tie: TieBreak::Arrival,
        };
        let mut v = vec![stored(2, 1, 1400, 7), stored(1, 1, 1100, 9)];
        policy.sort(&mut v);
        assert_eq!(ids(&v), ["a2#1", "a1#1"]);
    }

    #[test]
    fn sort_key_is_total_and_consistent_with_sort() {
        let policy = OrderingPolicy::facebook_group();
        let v = vec![stored(1, 1, 1100, 1), stored(1, 2, 1400, 2), stored(2, 1, 2100, 3)];
        let mut sorted = v.clone();
        policy.sort(&mut sorted);
        for w in sorted.windows(2) {
            assert!(policy.sort_key(&w[0]) <= policy.sort_key(&w[1]));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::event::{AuthorId, Post, PostId};
    use conprobe_sim::{LocalTime, SimRng, SimTime};

    fn gen_post(rng: &mut SimRng) -> StoredPost {
        StoredPost {
            post: Post::new(
                PostId::new(AuthorId(rng.gen_range(0u32..4)), rng.gen_range(1u32..50)),
                "x",
                LocalTime::from_nanos(0),
            ),
            server_ts: SimTime::from_millis(rng.gen_range(0u64..10_000)),
            arrival_index: rng.gen_range(0u64..1_000),
        }
    }

    fn gen_posts(rng: &mut SimRng, max: usize) -> Vec<StoredPost> {
        let len = rng.gen_range(0..max);
        (0..len).map(|_| gen_post(rng)).collect()
    }

    /// Sorting is idempotent: applying the policy twice equals once.
    #[test]
    fn sort_is_idempotent() {
        let mut rng = SimRng::new(0x5702_0001);
        for case in 0..400 {
            let mut posts = gen_posts(&mut rng, 30);
            let policy = OrderingPolicy::facebook_group();
            policy.sort(&mut posts);
            let once = posts.clone();
            policy.sort(&mut posts);
            assert_eq!(once, posts, "case {case}");
        }
    }

    /// The sort key induces the same order regardless of input
    /// permutation (total order ⇒ canonical result), provided keys are
    /// unique, which holds when post ids are unique.
    #[test]
    fn sort_is_permutation_invariant() {
        let mut rng = SimRng::new(0x5702_0002);
        for case in 0..400 {
            let posts = gen_posts(&mut rng, 20);
            // Deduplicate ids to make keys unique under ReversePostId.
            let mut seen = std::collections::HashSet::new();
            let posts: Vec<_> = posts.into_iter().filter(|p| seen.insert(p.id())).collect();
            let policy = OrderingPolicy::facebook_group();
            let mut a = posts.clone();
            let mut b = posts;
            b.reverse();
            policy.sort(&mut a);
            policy.sort(&mut b);
            assert_eq!(a, b, "case {case}");
        }
    }

    /// Exact-timestamp ordering never inverts strictly-ordered stamps.
    #[test]
    fn exact_timestamp_respects_time() {
        let mut rng = SimRng::new(0x5702_0003);
        for case in 0..400 {
            let mut posts = gen_posts(&mut rng, 30);
            OrderingPolicy::exact_timestamp().sort(&mut posts);
            for w in posts.windows(2) {
                assert!(w[0].server_ts <= w[1].server_ts, "case {case}");
            }
        }
    }
}
