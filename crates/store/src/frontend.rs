//! Front-end read caches.
//!
//! Large services do not serve every read from the authoritative replica:
//! reads hit front-end caches that are refreshed periodically. A client
//! whose consecutive reads land on *different* caches (or on a cache that
//! has not yet absorbed the client's own write) observes exactly the
//! session-guarantee anomalies of §III — a write that is acknowledged but
//! missing from the next read (read-your-writes), or a post that was seen
//! once and then disappears (monotonic reads).
//!
//! [`ReadCache`] is the pure cache state; the service node decides when to
//! refresh it (timer-driven) and which cache a given read hits.

use crate::event::PostId;
use conprobe_sim::{SimDuration, SimTime};
use std::sync::Arc;

/// A snapshot cache in front of a replica.
#[derive(Debug, Clone)]
pub struct ReadCache {
    snapshot: Arc<[PostId]>,
    last_refresh: Option<SimTime>,
    refresh_every: SimDuration,
}

impl ReadCache {
    /// Creates an empty cache that considers itself stale after
    /// `refresh_every`. A never-refreshed cache is always stale.
    pub fn new(refresh_every: SimDuration) -> Self {
        ReadCache { snapshot: Arc::from([]), last_refresh: None, refresh_every }
    }

    /// The cached sequence served to readers.
    pub fn read(&self) -> &[PostId] {
        &self.snapshot
    }

    /// When the cache last pulled from its replica (`None` if never).
    pub fn last_refresh(&self) -> Option<SimTime> {
        self.last_refresh
    }

    /// The configured refresh interval.
    pub fn refresh_every(&self) -> SimDuration {
        self.refresh_every
    }

    /// Whether the cache is due for a refresh at `now`.
    pub fn is_stale(&self, now: SimTime) -> bool {
        match self.last_refresh {
            None => true,
            Some(last) => now.saturating_since(last) >= self.refresh_every,
        }
    }

    /// Installs a fresh snapshot taken at `now`. The `Arc` slice is the
    /// replica's cached view, shared rather than copied.
    pub fn refresh(&mut self, snapshot: Arc<[PostId]>, now: SimTime) {
        self.snapshot = snapshot;
        self.last_refresh = Some(now);
    }

    /// Refreshes only if stale, pulling the snapshot lazily.
    ///
    /// Returns `true` if a refresh happened.
    pub fn refresh_if_stale<F>(&mut self, now: SimTime, pull: F) -> bool
    where
        F: FnOnce() -> Arc<[PostId]>,
    {
        if self.is_stale(now) {
            self.refresh(pull(), now);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AuthorId;

    fn id(seq: u32) -> PostId {
        PostId::new(AuthorId(1), seq)
    }

    #[test]
    fn fresh_cache_is_stale_and_empty() {
        let c = ReadCache::new(SimDuration::from_millis(500));
        assert!(c.is_stale(SimTime::ZERO));
        assert!(c.read().is_empty());
    }

    #[test]
    fn refresh_installs_snapshot() {
        let mut c = ReadCache::new(SimDuration::from_millis(500));
        c.refresh(vec![id(1), id(2)].into(), SimTime::from_millis(100));
        assert_eq!(c.read(), [id(1), id(2)]);
        assert_eq!(c.last_refresh(), Some(SimTime::from_millis(100)));
        assert!(!c.is_stale(SimTime::from_millis(400)));
        assert!(c.is_stale(SimTime::from_millis(600)));
    }

    #[test]
    fn refresh_if_stale_pulls_lazily() {
        let mut c = ReadCache::new(SimDuration::from_millis(100));
        let refreshed = c.refresh_if_stale(SimTime::from_millis(50), || vec![id(1)].into());
        assert!(refreshed);
        assert_eq!(c.read(), [id(1)]);
        // Not stale yet: the closure must not run.
        let refreshed = c.refresh_if_stale(SimTime::from_millis(100), || panic!("pulled"));
        assert!(!refreshed);
        assert_eq!(c.read(), [id(1)]);
    }

    #[test]
    fn staleness_boundary_is_inclusive() {
        let mut c = ReadCache::new(SimDuration::from_millis(100));
        c.refresh(Arc::from([]), SimTime::from_millis(0));
        assert!(c.is_stale(SimTime::from_millis(100)));
        assert!(!c.is_stale(SimTime::from_millis(99)));
    }
}
