//! Posts — the write events of the paper's model.
//!
//! A *write request creates an event that is inserted into the service
//! state*; a *read request returns a sequence of events* (§III). A
//! [`PostId`] is globally unique and deterministic: the author id plus the
//! author's own sequence number. This mirrors how the paper's tests name
//! messages M1…M6 by writer and position.

use conprobe_json::{member, FromJson, JsonError, JsonValue, ToJson};
use conprobe_sim::{LocalTime, SimTime};
use std::fmt;

/// Identifies a writing client (an agent in the measurement study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AuthorId(pub u32);

impl fmt::Display for AuthorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Globally unique post identifier: `(author, author-local sequence)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PostId {
    /// The writing client.
    pub author: AuthorId,
    /// 1-based sequence number within the author's session.
    pub seq: u32,
}

impl PostId {
    /// Creates a post id.
    pub const fn new(author: AuthorId, seq: u32) -> Self {
        PostId { author, seq }
    }

    /// Packs the id into a single `u64` (author in the high 32 bits).
    pub const fn as_u64(self) -> u64 {
        ((self.author.0 as u64) << 32) | self.seq as u64
    }

    /// Unpacks an id produced by [`PostId::as_u64`].
    pub const fn from_u64(raw: u64) -> Self {
        PostId { author: AuthorId((raw >> 32) as u32), seq: raw as u32 }
    }
}

impl fmt::Display for PostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.author, self.seq)
    }
}

impl ToJson for AuthorId {
    fn to_json(&self) -> JsonValue {
        self.0.to_json()
    }
}

impl FromJson for AuthorId {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        u32::from_json(v).map(AuthorId)
    }
}

impl ToJson for PostId {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("author".into(), self.author.to_json()),
            ("seq".into(), self.seq.to_json()),
        ])
    }
}

impl FromJson for PostId {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        Ok(PostId {
            author: AuthorId::from_json(member(v, "author")?)?,
            seq: u32::from_json(member(v, "seq")?)?,
        })
    }
}

/// A post as submitted by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Post {
    /// Unique identifier.
    pub id: PostId,
    /// Message body (opaque to the infrastructure).
    pub content: String,
    /// The writer's local clock reading at submission time.
    pub client_ts: LocalTime,
}

impl Post {
    /// Creates a post.
    pub fn new(id: PostId, content: impl Into<String>, client_ts: LocalTime) -> Self {
        Post { id, content: content.into(), client_ts }
    }
}

/// A post as held by a replica, annotated with server-side metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredPost {
    /// The post itself.
    pub post: Post,
    /// Server timestamp assigned by the replica that first accepted the
    /// write (used by timestamp-based ordering policies).
    pub server_ts: SimTime,
    /// Position in this replica's arrival order (used by arrival-based
    /// ordering policies; rewritten by canonical re-sequencing).
    pub arrival_index: u64,
}

impl StoredPost {
    /// Shorthand for the post id.
    pub fn id(&self) -> PostId {
        self.post.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_id_packs_and_unpacks() {
        let id = PostId::new(AuthorId(3), 7);
        assert_eq!(PostId::from_u64(id.as_u64()), id);
        assert_eq!(id.to_string(), "a3#7");
    }

    #[test]
    fn post_id_round_trip_extremes() {
        for (a, s) in [(0, 0), (u32::MAX, u32::MAX), (1, u32::MAX), (u32::MAX, 1)] {
            let id = PostId::new(AuthorId(a), s);
            assert_eq!(PostId::from_u64(id.as_u64()), id);
        }
    }

    #[test]
    fn post_id_orders_by_author_then_seq() {
        assert!(PostId::new(AuthorId(1), 9) < PostId::new(AuthorId(2), 1));
        assert!(PostId::new(AuthorId(1), 1) < PostId::new(AuthorId(1), 2));
    }

    #[test]
    fn post_construction() {
        let p = Post::new(PostId::new(AuthorId(0), 1), "hello", LocalTime::from_nanos(5));
        assert_eq!(p.content, "hello");
        assert_eq!(p.client_ts.as_nanos(), 5);
    }
}
