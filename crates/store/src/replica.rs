//! A single replica's state machine.
//!
//! [`ReplicaCore`] holds the set of posts a replica has applied, remembers
//! arrival order, produces policy-ordered snapshots for reads, and supports
//! digest-based anti-entropy (compute what a peer is missing) plus canonical
//! re-sequencing (the reconciliation step that ends order divergence in the
//! Google+ model).

use crate::event::{Post, PostId, StoredPost};
use crate::ordering::OrderingPolicy;
use conprobe_sim::SimTime;
use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::Arc;

/// The memoized policy-ordered view of a replica's posts.
///
/// Reads dominate writes in every service model (Tables I/II: hundreds of
/// reads against a handful of writes per test), so the snapshot a read
/// returns is recomputed only when the post set actually changed — the
/// `generation` field records which mutation generation the view reflects.
/// The shared `Arc` slices let every read between two mutations reuse one
/// allocation.
#[derive(Debug, Clone)]
struct ViewCache {
    generation: u64,
    ids: Arc<[PostId]>,
    posts: Arc<[StoredPost]>,
}

/// Replica state: applied posts, arrival order, ordering policy.
#[derive(Debug, Clone)]
pub struct ReplicaCore {
    policy: OrderingPolicy,
    posts: Vec<StoredPost>,
    seen: HashSet<PostId>,
    arrival_counter: u64,
    /// Bumped by every state mutation; guards `view`.
    generation: u64,
    /// Lazily rebuilt policy-ordered view (interior mutability keeps the
    /// read path `&self`; each simulated world is single-threaded, so the
    /// `RefCell` is never contended).
    view: RefCell<Option<ViewCache>>,
}

impl ReplicaCore {
    /// Creates an empty replica with the given ordering policy.
    pub fn new(policy: OrderingPolicy) -> Self {
        ReplicaCore {
            policy,
            posts: Vec::new(),
            seen: HashSet::new(),
            arrival_counter: 0,
            generation: 0,
            view: RefCell::new(None),
        }
    }

    /// The replica's ordering policy.
    pub fn policy(&self) -> OrderingPolicy {
        self.policy
    }

    /// Number of distinct posts applied.
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// True when no posts have been applied.
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }

    /// Applies a post first accepted locally at `server_ts`.
    ///
    /// Returns the stored record if the post was new, or `None` if it was a
    /// duplicate (idempotent re-delivery).
    pub fn apply_new(&mut self, post: Post, server_ts: SimTime) -> Option<&StoredPost> {
        if !self.seen.insert(post.id) {
            return None;
        }
        let stored = StoredPost { post, server_ts, arrival_index: self.arrival_counter };
        self.arrival_counter += 1;
        self.generation += 1;
        self.posts.push(stored);
        self.posts.last()
    }

    /// Applies a post replicated from a peer, preserving the original
    /// server timestamp but recording local arrival order.
    ///
    /// Returns `true` if the post was new.
    pub fn apply_replicated(&mut self, stored: StoredPost) -> bool {
        if !self.seen.insert(stored.id()) {
            return false;
        }
        let record = StoredPost { arrival_index: self.arrival_counter, ..stored };
        self.arrival_counter += 1;
        self.generation += 1;
        self.posts.push(record);
        true
    }

    /// Whether this replica has applied `id`.
    pub fn contains(&self, id: PostId) -> bool {
        self.seen.contains(&id)
    }

    /// The post ids this replica holds, as a digest for anti-entropy.
    pub fn digest(&self) -> HashSet<PostId> {
        self.seen.clone()
    }

    /// Posts this replica holds that are absent from `peer_digest` —
    /// the anti-entropy payload to push to that peer.
    pub fn missing_from(&self, peer_digest: &HashSet<PostId>) -> Vec<StoredPost> {
        self.posts.iter().filter(|p| !peer_digest.contains(&p.id())).cloned().collect()
    }

    /// The current policy-ordered view, rebuilding it only if a mutation
    /// happened since the last read.
    fn view(&self) -> ViewCache {
        let mut slot = self.view.borrow_mut();
        match slot.as_ref() {
            Some(v) if v.generation == self.generation => v.clone(),
            _ => {
                let mut posts = self.posts.clone();
                self.policy.sort(&mut posts);
                let ids: Arc<[PostId]> = posts.iter().map(StoredPost::id).collect();
                let view = ViewCache { generation: self.generation, ids, posts: posts.into() };
                *slot = Some(view.clone());
                view
            }
        }
    }

    /// The sequence of post ids a read returns, ordered by the policy.
    ///
    /// Repeated reads between mutations share one cached allocation; the
    /// result is identical to cloning and policy-sorting the post set.
    pub fn snapshot(&self) -> Arc<[PostId]> {
        self.view().ids
    }

    /// The full stored posts in policy order (for read paths that need
    /// timestamps, e.g. feed ranking). Cached like [`ReplicaCore::snapshot`].
    pub fn snapshot_posts(&self) -> Arc<[StoredPost]> {
        self.view().posts
    }

    /// Rewrites arrival indices so that arrival order coincides with exact
    /// server-timestamp order.
    ///
    /// This is the reconciliation step of the Google+ model's anti-entropy:
    /// replicas serve reads in arrival order (which diverges across replicas
    /// for concurrent writes), and periodically converge to the canonical
    /// timestamp order — ending the order-divergence window.
    pub fn resequence_canonical(&mut self) {
        OrderingPolicy::exact_timestamp().sort(&mut self.posts);
        for (i, p) in self.posts.iter_mut().enumerate() {
            p.arrival_index = i as u64;
        }
        self.arrival_counter = self.posts.len() as u64;
        self.generation += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AuthorId;
    use conprobe_sim::LocalTime;

    fn post(author: u32, seq: u32) -> Post {
        Post::new(PostId::new(AuthorId(author), seq), "m", LocalTime::from_nanos(0))
    }

    #[test]
    fn apply_and_snapshot_in_arrival_order() {
        let mut r = ReplicaCore::new(OrderingPolicy::Arrival);
        r.apply_new(post(1, 1), SimTime::from_millis(10)).unwrap();
        r.apply_new(post(2, 1), SimTime::from_millis(5)).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(
            r.snapshot().to_vec(),
            vec![PostId::new(AuthorId(1), 1), PostId::new(AuthorId(2), 1)]
        );
    }

    #[test]
    fn duplicate_apply_is_ignored() {
        let mut r = ReplicaCore::new(OrderingPolicy::Arrival);
        assert!(r.apply_new(post(1, 1), SimTime::ZERO).is_some());
        assert!(r.apply_new(post(1, 1), SimTime::from_secs(9)).is_none());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn replicated_apply_preserves_server_ts() {
        let mut a = ReplicaCore::new(OrderingPolicy::exact_timestamp());
        a.apply_new(post(1, 1), SimTime::from_millis(700)).unwrap();
        let payload = a.missing_from(&HashSet::new());
        let mut b = ReplicaCore::new(OrderingPolicy::exact_timestamp());
        assert!(b.apply_replicated(payload[0].clone()));
        assert!(!b.apply_replicated(payload[0].clone()));
        assert_eq!(b.snapshot_posts()[0].server_ts, SimTime::from_millis(700));
    }

    #[test]
    fn digest_and_missing_from_diff() {
        let mut a = ReplicaCore::new(OrderingPolicy::Arrival);
        a.apply_new(post(1, 1), SimTime::ZERO).unwrap();
        a.apply_new(post(1, 2), SimTime::ZERO).unwrap();
        let mut b = ReplicaCore::new(OrderingPolicy::Arrival);
        b.apply_new(post(1, 1), SimTime::ZERO).unwrap();
        let missing = a.missing_from(&b.digest());
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].id(), PostId::new(AuthorId(1), 2));
        assert!(a.missing_from(&a.digest()).is_empty());
    }

    #[test]
    fn resequence_canonical_converges_two_replicas() {
        // a receives (x, y); b receives (y, x). In arrival order they
        // diverge; after canonical re-sequencing both agree.
        let x = post(1, 1);
        let y = post(2, 1);
        let mut a = ReplicaCore::new(OrderingPolicy::Arrival);
        a.apply_new(x.clone(), SimTime::from_millis(100)).unwrap();
        let x_stored = a.snapshot_posts()[0].clone();
        let mut b = ReplicaCore::new(OrderingPolicy::Arrival);
        b.apply_new(y.clone(), SimTime::from_millis(120)).unwrap();
        let y_stored = b.snapshot_posts()[0].clone();
        a.apply_replicated(y_stored);
        b.apply_replicated(x_stored);
        assert_ne!(a.snapshot(), b.snapshot(), "pre-reconciliation orders diverge");
        a.resequence_canonical();
        b.resequence_canonical();
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.snapshot().to_vec(), vec![x.id, y.id]);
    }

    #[test]
    fn empty_replica_behaviour() {
        let r = ReplicaCore::new(OrderingPolicy::Arrival);
        assert!(r.is_empty());
        assert!(r.snapshot().is_empty());
        assert!(!r.contains(PostId::new(AuthorId(0), 1)));
    }

    #[test]
    fn arrivals_after_resequence_continue_counter() {
        let mut r = ReplicaCore::new(OrderingPolicy::Arrival);
        r.apply_new(post(1, 1), SimTime::from_millis(50)).unwrap();
        r.apply_new(post(1, 2), SimTime::from_millis(20)).unwrap();
        r.resequence_canonical();
        r.apply_new(post(1, 3), SimTime::from_millis(10)).unwrap();
        // New arrival lands after the resequenced posts in arrival order
        // even though its timestamp is older.
        assert_eq!(
            r.snapshot().to_vec(),
            vec![
                PostId::new(AuthorId(1), 2),
                PostId::new(AuthorId(1), 1),
                PostId::new(AuthorId(1), 3)
            ]
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::event::AuthorId;
    use conprobe_sim::{LocalTime, SimRng};

    fn gen_ops(rng: &mut SimRng) -> Vec<(u32, u32, u64)> {
        let len = rng.gen_range(0usize..40);
        (0..len)
            .map(|_| (rng.gen_range(0u32..3), rng.gen_range(1u32..20), rng.gen_range(0u64..5_000)))
            .collect()
    }

    /// A replica's snapshot never contains duplicates and always has
    /// exactly as many entries as distinct applied ids.
    #[test]
    fn snapshot_is_duplicate_free() {
        let mut rng = SimRng::new(0x4E01_0001);
        for case in 0..400 {
            let ops = gen_ops(&mut rng);
            let mut r = ReplicaCore::new(OrderingPolicy::Arrival);
            let mut distinct = std::collections::HashSet::new();
            for (a, s, ms) in ops {
                let p = Post::new(PostId::new(AuthorId(a), s), "x", LocalTime::from_nanos(0));
                distinct.insert(p.id);
                r.apply_new(p, SimTime::from_millis(ms));
            }
            let snap = r.snapshot();
            let set: std::collections::HashSet<_> = snap.iter().copied().collect();
            assert_eq!(set.len(), snap.len(), "case {case}");
            assert_eq!(snap.len(), distinct.len(), "case {case}");
        }
    }

    /// Anti-entropy exchange makes two replicas' digests equal, and
    /// canonical re-sequencing makes their snapshots equal.
    #[test]
    fn anti_entropy_converges() {
        let mut rng = SimRng::new(0x4E01_0002);
        for case in 0..400 {
            let ops = gen_ops(&mut rng);
            let split = rng.gen_range(0usize..40);
            // Each post id must be written exactly once (as in the real
            // system, where a write has a single home replica).
            let mut seen = std::collections::HashSet::new();
            let ops: Vec<_> = ops.into_iter().filter(|(a, s, _)| seen.insert((*a, *s))).collect();
            let mut a = ReplicaCore::new(OrderingPolicy::Arrival);
            let mut b = ReplicaCore::new(OrderingPolicy::Arrival);
            for (i, (au, s, ms)) in ops.iter().enumerate() {
                let p = Post::new(PostId::new(AuthorId(*au), *s), "x", LocalTime::from_nanos(0));
                if i < split {
                    a.apply_new(p, SimTime::from_millis(*ms));
                } else {
                    b.apply_new(p, SimTime::from_millis(*ms));
                }
            }
            for sp in a.missing_from(&b.digest()) {
                b.apply_replicated(sp);
            }
            for sp in b.missing_from(&a.digest()) {
                a.apply_replicated(sp);
            }
            assert_eq!(a.digest(), b.digest(), "case {case}");
            a.resequence_canonical();
            b.resequence_canonical();
            assert_eq!(a.snapshot(), b.snapshot(), "case {case}");
        }
    }

    /// The cached policy-ordered view always equals a fresh clone+sort of
    /// the raw post set, across interleaved applies (local and
    /// replicated), duplicate deliveries, canonical re-sequencing, and
    /// crash/recovery refill. Reads are interleaved *before* mutations so
    /// the test exercises cache invalidation, not just cold rebuilds.
    #[test]
    fn cached_view_equals_fresh_clone_and_sort() {
        // The reference path deliberately bypasses the cache:
        // `missing_from(∅)` returns the raw posts, which we clone and sort
        // exactly the way the pre-cache implementation did.
        fn check(r: &ReplicaCore, case: usize, step: usize) {
            let mut expected = r.missing_from(&std::collections::HashSet::new());
            r.policy().sort(&mut expected);
            let expected_ids: Vec<PostId> = expected.iter().map(StoredPost::id).collect();
            assert_eq!(r.snapshot().to_vec(), expected_ids, "case {case} step {step}");
            assert_eq!(r.snapshot_posts().to_vec(), expected, "case {case} step {step}");
        }

        let mut rng = SimRng::new(0x4E01_0003);
        for case in 0..200 {
            let policy = match rng.gen_range(0u32..3) {
                0 => OrderingPolicy::Arrival,
                1 => OrderingPolicy::facebook_group(),
                _ => OrderingPolicy::exact_timestamp(),
            };
            let mut r = ReplicaCore::new(policy);
            let steps = rng.gen_range(1usize..50);
            for step in 0..steps {
                // Populate the cache so the next mutation must invalidate.
                let _ = r.snapshot();
                match rng.gen_range(0u32..12) {
                    0..=6 => {
                        let p = Post::new(
                            PostId::new(AuthorId(rng.gen_range(0u32..3)), rng.gen_range(1u32..25)),
                            "x",
                            LocalTime::from_nanos(0),
                        );
                        r.apply_new(p, SimTime::from_millis(rng.gen_range(0u64..5_000)));
                    }
                    7..=8 => {
                        // Replicated apply, possibly a duplicate.
                        let donor = r.clone();
                        let payload = donor.missing_from(&std::collections::HashSet::new());
                        if !payload.is_empty() {
                            let i = rng.gen_range(0..payload.len());
                            r.apply_replicated(payload[i].clone());
                        }
                    }
                    9..=10 => r.resequence_canonical(),
                    _ => {
                        // Crash: volatile state is lost; anti-entropy
                        // refills the fresh replica from a survivor.
                        let survivor = r.clone();
                        r = ReplicaCore::new(policy);
                        for sp in survivor.missing_from(&r.digest()) {
                            r.apply_replicated(sp);
                        }
                    }
                }
                check(&r, case, step);
            }
        }
    }
}
