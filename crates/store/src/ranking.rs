//! Interest-based feed ranking — the Facebook Feed read path.
//!
//! The paper explains Facebook Feed's extreme anomaly rates by its read
//! semantics: *"the reply to a read contains a subset of the writes, which
//! are not the most recent ones, but a selection of writes based on a
//! criteria that depends on the expected interest of these writes for the
//! user issuing the read operation."* (§V, order-divergence discussion.)
//!
//! [`FeedRanker`] models that pipeline:
//!
//! 1. **Indexing delay** — a write becomes rankable only `index_delay` after
//!    it is visible at the serving replica (newsfeed indices are
//!    asynchronously materialized). Until then the author's own read misses
//!    it → read-your-writes violations.
//! 2. **Interest score** — `score = -age + N(0, noise)`, sampled per read
//!    and per post. Different readers (and the same reader across reads)
//!    order near-contemporaneous posts differently → order divergence and
//!    monotonic-writes violations.
//! 3. **Selection** — each indexed post is independently dropped with
//!    probability `omit_prob` (shard fan-in timeouts, interest threshold),
//!    and the result is truncated to `top_k` → content divergence and
//!    monotonic-reads violations.

use crate::event::{PostId, StoredPost};
use conprobe_sim::{SimDuration, SimRng, SimTime};

/// Parameters of the ranked read path.
#[derive(Debug, Clone)]
pub struct RankingConfig {
    /// Standard deviation of the per-(read, post) interest noise, in
    /// seconds of equivalent age.
    pub noise_std_secs: f64,
    /// Maximum number of posts a read returns.
    pub top_k: usize,
    /// Probability that an indexed post is omitted from a given read.
    pub omit_prob: f64,
    /// Delay between a post becoming visible at the replica and becoming
    /// rankable (index materialization lag).
    pub index_delay: SimDuration,
}

impl Default for RankingConfig {
    /// Defaults tuned to reproduce the paper's Facebook Feed anomaly rates
    /// (see `conprobe-services::fbfeed`).
    fn default() -> Self {
        RankingConfig {
            noise_std_secs: 2.0,
            top_k: 25,
            omit_prob: 0.04,
            index_delay: SimDuration::from_millis(1200),
        }
    }
}

/// A post as seen by the ranking pipeline: the stored record plus the time
/// it became visible at the serving replica.
#[derive(Debug, Clone)]
pub struct RankablePost {
    /// The stored post.
    pub stored: StoredPost,
    /// When the serving replica applied it.
    pub visible_at: SimTime,
}

/// The ranked read path.
#[derive(Debug, Clone)]
pub struct FeedRanker {
    config: RankingConfig,
}

impl FeedRanker {
    /// Creates a ranker.
    pub fn new(config: RankingConfig) -> Self {
        FeedRanker { config }
    }

    /// The ranker's configuration.
    pub fn config(&self) -> &RankingConfig {
        &self.config
    }

    /// Executes one ranked read over `posts` at time `now`, drawing
    /// selection noise from `rng`.
    ///
    /// Selection keeps the `top_k` best-scoring posts; presentation is in
    /// *score-ascending* order, i.e. the service's newest-first feed
    /// normalized back to (noisy) timeline order, which is how the paper's
    /// agents logged the sequence. A noise-free read therefore returns
    /// chronological order; noise produces the inversions behind Facebook
    /// Feed's monotonic-writes and order-divergence anomalies. The same
    /// inputs with the same RNG state return the same selection, but — as
    /// in the real service — two successive reads draw fresh noise and may
    /// both reorder and re-select.
    pub fn read(&self, posts: &[RankablePost], now: SimTime, rng: &mut SimRng) -> Vec<PostId> {
        let mut scored: Vec<(f64, PostId)> = Vec::with_capacity(posts.len());
        for p in posts {
            // Not yet indexed: invisible to ranked reads.
            if now.saturating_since(p.visible_at) < self.config.index_delay {
                continue;
            }
            if self.config.omit_prob > 0.0 && rng.gen_bool(self.config.omit_prob) {
                continue;
            }
            let age = now.saturating_since(p.stored.server_ts).as_secs_f64();
            let noise = if self.config.noise_std_secs > 0.0 {
                rng.gen_normal(0.0, self.config.noise_std_secs)
            } else {
                0.0
            };
            scored.push((-age + noise, p.stored.id()));
        }
        // Best score first; post id as a deterministic tie-break.
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        scored.truncate(self.config.top_k);
        // Present in (noisy) timeline order: worst-score = oldest first.
        scored.reverse();
        scored.into_iter().map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AuthorId, Post, PostId};
    use conprobe_sim::LocalTime;

    fn rankable(seq: u32, server_ms: u64, visible_ms: u64) -> RankablePost {
        RankablePost {
            stored: StoredPost {
                post: Post::new(PostId::new(AuthorId(1), seq), "m", LocalTime::from_nanos(0)),
                server_ts: SimTime::from_millis(server_ms),
                arrival_index: seq as u64,
            },
            visible_at: SimTime::from_millis(visible_ms),
        }
    }

    fn noiseless(top_k: usize, omit: f64, index_ms: u64) -> FeedRanker {
        FeedRanker::new(RankingConfig {
            noise_std_secs: 0.0,
            top_k,
            omit_prob: omit,
            index_delay: SimDuration::from_millis(index_ms),
        })
    }

    #[test]
    fn noiseless_read_is_timeline_ordered() {
        let ranker = noiseless(10, 0.0, 0);
        let posts = vec![rankable(2, 3_000, 3_000), rankable(1, 1_000, 1_000)];
        let mut rng = SimRng::new(1);
        let out = ranker.read(&posts, SimTime::from_secs(10), &mut rng);
        // Presentation is normalized to chronological order.
        assert_eq!(out, vec![PostId::new(AuthorId(1), 1), PostId::new(AuthorId(1), 2)]);
    }

    #[test]
    fn unindexed_posts_are_invisible() {
        let ranker = noiseless(10, 0.0, 1_000);
        let posts = vec![rankable(1, 0, 9_500)];
        let mut rng = SimRng::new(1);
        assert!(ranker.read(&posts, SimTime::from_secs(10), &mut rng).is_empty());
        assert_eq!(ranker.read(&posts, SimTime::from_millis(10_500), &mut rng).len(), 1);
    }

    #[test]
    fn top_k_truncates() {
        let ranker = noiseless(2, 0.0, 0);
        let posts: Vec<_> = (1..=5).map(|i| rankable(i, i as u64 * 100, 0)).collect();
        let mut rng = SimRng::new(1);
        let out = ranker.read(&posts, SimTime::from_secs(5), &mut rng);
        // The two newest posts are selected, presented oldest-first.
        assert_eq!(out, vec![PostId::new(AuthorId(1), 4), PostId::new(AuthorId(1), 5)]);
    }

    #[test]
    fn omit_prob_one_drops_everything() {
        let ranker = noiseless(10, 1.0, 0);
        let posts = vec![rankable(1, 0, 0)];
        let mut rng = SimRng::new(1);
        assert!(ranker.read(&posts, SimTime::from_secs(1), &mut rng).is_empty());
    }

    #[test]
    fn noise_reorders_contemporaneous_posts_across_reads() {
        let ranker = FeedRanker::new(RankingConfig {
            noise_std_secs: 2.0,
            top_k: 10,
            omit_prob: 0.0,
            index_delay: SimDuration::ZERO,
        });
        // Two posts 300 ms apart (the paper's write spacing in Test 1).
        let posts = vec![rankable(1, 1_000, 1_000), rankable(2, 1_300, 1_300)];
        let mut rng = SimRng::new(7);
        let mut orders = std::collections::HashSet::new();
        for _ in 0..50 {
            orders.insert(ranker.read(&posts, SimTime::from_secs(5), &mut rng));
        }
        assert!(orders.len() > 1, "noise should produce both orders");
    }

    #[test]
    fn noise_rarely_reorders_well_separated_posts() {
        let ranker = FeedRanker::new(RankingConfig {
            noise_std_secs: 1.0,
            top_k: 10,
            omit_prob: 0.0,
            index_delay: SimDuration::ZERO,
        });
        // 30 s apart: 30 sigma — effectively never reordered.
        let posts = vec![rankable(1, 0, 0), rankable(2, 30_000, 30_000)];
        let mut rng = SimRng::new(7);
        for _ in 0..100 {
            let out = ranker.read(&posts, SimTime::from_secs(60), &mut rng);
            assert_eq!(out[0], PostId::new(AuthorId(1), 1), "oldest first");
        }
    }

    #[test]
    fn deterministic_given_same_rng_state() {
        let ranker = FeedRanker::new(RankingConfig::default());
        let posts: Vec<_> = (1..=6).map(|i| rankable(i, i as u64 * 300, 0)).collect();
        let a = ranker.read(&posts, SimTime::from_secs(30), &mut SimRng::new(3));
        let b = ranker.read(&posts, SimTime::from_secs(30), &mut SimRng::new(3));
        assert_eq!(a, b);
    }
}
