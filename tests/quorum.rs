//! The methodology applied to a quorum system (reference topology beyond
//! the paper): majority-synchronous writes + quorum reads.
//!
//! Expected profile:
//! * **read your writes: never violated** — the write quorum and every read
//!   quorum intersect, so a client's acknowledged write is always in some
//!   replica its next read consults;
//! * **order divergence: never** — coordinators present a canonical
//!   timestamp order;
//! * **monotonic reads: possible without read repair** — two successive
//!   reads may be answered by different majorities, the second missing a
//!   write the first had; read repair closes the gap over time.

use conprobe::core::AnomalyKind;
use conprobe::harness::proto::TestKind;
use conprobe::harness::runner::{run_one_test, TestConfig};
use conprobe::services::catalog::topology_quorum;
use conprobe::services::ServiceKind;

fn quorum_config(kind: TestKind, read_repair: bool) -> TestConfig {
    let mut config = TestConfig::paper(ServiceKind::Blogger, kind);
    config.service_override = Some(topology_quorum(read_repair));
    config
}

#[test]
fn quorum_system_never_violates_read_your_writes() {
    for kind in [TestKind::Test1, TestKind::Test2] {
        for seed in 0..4 {
            let r = run_one_test(&quorum_config(kind, false), seed);
            assert!(r.completed, "{kind} seed {seed}");
            assert!(
                !r.has(AnomalyKind::ReadYourWrites),
                "{kind} seed {seed}: overlapping quorums guarantee RYW"
            );
        }
    }
}

#[test]
fn quorum_system_never_shows_order_divergence() {
    for seed in 0..6 {
        let r = run_one_test(&quorum_config(TestKind::Test2, false), seed);
        assert!(
            !r.has(AnomalyKind::OrderDivergence),
            "seed {seed}: canonical timestamp order at every coordinator"
        );
    }
}

#[test]
fn quorum_writes_are_globally_ordered_consistently() {
    // Monotonic writes: a client's two sync-majority writes carry
    // increasing timestamps and every read presents timestamp order.
    for seed in 0..4 {
        let r = run_one_test(&quorum_config(TestKind::Test1, false), seed);
        assert!(!r.has(AnomalyKind::MonotonicWrites), "seed {seed}: sync writes cannot reorder");
    }
}

#[test]
fn read_repair_reduces_monotonic_read_exposure() {
    // MR violations require one majority to answer with a write another
    // majority lacks. Without repair this stays possible throughout a
    // test; with repair every read heals the lag. We compare total MR
    // observations across seeds (a statistical, not absolute, claim).
    let count = |read_repair: bool| -> usize {
        (0..10)
            .map(|seed| {
                run_one_test(&quorum_config(TestKind::Test2, read_repair), seed)
                    .analysis
                    .count(AnomalyKind::MonotonicReads)
            })
            .sum()
    };
    let without = count(false);
    let with = count(true);
    assert!(with <= without, "read repair must not increase MR exposure ({with} > {without})");
}
