//! Live-path chaos: the fault-injecting interposer, replica
//! crash/rejoin, and graceful degradation, exercised end to end over
//! real loopback sockets (ISSUE 9 acceptance bar).
//!
//! These tests put the [`ChaosProxy`] between real probe agents and a
//! live [`WireServer`] and verify the robustness contract: injected
//! byte corruption is a *typed* rejection (never a panic), mid-frame
//! resets are survived by [`ReconnectPolicy`]'s idempotent resend, an
//! overloaded server sheds load with retryable `busy` frames instead of
//! hanging clients, and a crashed quorum replica rejoins via state
//! transfer after which the unmodified checkers analyze clean.

use conprobe::cli::{execute, parse};
use conprobe::harness::proto::TestKind;
use conprobe::harness::transport::ServiceEndpoint;
use conprobe::services::api::{ClientOp, OpResult};
use conprobe::services::ServiceKind;
use conprobe::sim::{FaultEvent, FaultPlan, LocalTime, SimDuration, SimTime};
use conprobe::store::{AuthorId, Post, PostId};
use conprobe::wire::{
    drive_service_actions, run_load, run_probe, ChaosConfig, ChaosProxy, ChaosTarget,
    InjectProfile, LoadConfig, ProbeConfig, ReconnectPolicy, ServeConfig, WireClient, WireServer,
};
use conprobe_obs::MetricsRegistry;
use std::time::Duration;

/// Interposer targets mirroring a server's listeners one to one.
fn targets_for(server: &WireServer) -> Vec<ChaosTarget> {
    server
        .addrs()
        .iter()
        .map(|&(region, addr)| ChaosTarget { region, replica_region: region, addr })
        .collect()
}

/// Fuzz-style sweep: seeded corruption, injected resets and slow-loris
/// trickle on every link at once. No thread may panic, the decoder must
/// reject corrupt frames as typed errors, and the probe must still
/// produce an analyzable result — completed or salvaged, never wedged.
#[test]
fn fuzzed_interposer_probe_survives_corruption_resets_and_trickle() {
    let server = WireServer::start(&ServeConfig::loopback(ServiceKind::Blogger, 51)).expect("bind");
    let proxy = ChaosProxy::start(
        &ChaosConfig {
            seed: 51,
            plan: FaultPlan::new(51),
            inject: InjectProfile {
                corrupt_prob: 0.03,
                reset_prob: 0.01,
                trickle_prob: 0.05,
                ..InjectProfile::default()
            },
            base_port: 0,
        },
        &targets_for(&server),
    )
    .expect("interposer");

    let mut config =
        ProbeConfig::loopback(ServiceKind::Blogger, TestKind::Test2, proxy.addrs().to_vec(), 51);
    // Short read timeout: a frame eaten by the corrupt-then-close path
    // becomes a quick reconnect instead of a 5 s stall per incident.
    config.timeout = Duration::from_millis(1000);
    let result = run_probe(&config).expect("a fuzzed probe still returns a result");

    server.request_stop();
    proxy.request_stop();
    let ledger = proxy.join();
    server.join();

    assert!(ledger.forwarded > 0, "traffic flowed: {ledger:?}");
    assert!(ledger.corrupted > 0, "the fuzz arm must actually corrupt frames: {ledger:?}");
    assert!(ledger.trickled > 0, "the fuzz arm must actually trickle frames: {ledger:?}");
    // The run may be salvaged (a quarantined agent after repeated
    // injected failures is legitimate) but never empty-handed.
    assert!(result.completed || result.salvaged, "probe neither completed nor salvaged");
    assert!(result.writes_total > 0);
}

/// A single client driven through an aggressive reset regime: every
/// torn connection is re-dialed and the in-flight frame re-sent. The
/// write path is idempotent — a post re-sent after an ambiguous drop
/// must not appear twice in the final read.
#[test]
fn reconnect_policy_resends_through_injected_resets_without_duplicates() {
    let server = WireServer::start(&ServeConfig::loopback(ServiceKind::Blogger, 52)).expect("bind");
    let proxy = ChaosProxy::start(
        &ChaosConfig {
            seed: 52,
            plan: FaultPlan::new(52),
            inject: InjectProfile { reset_prob: 0.08, ..InjectProfile::default() },
            base_port: 0,
        },
        &targets_for(&server),
    )
    .expect("interposer");

    let addr = proxy.addrs()[0].1;
    let mut client = WireClient::connect_with_policy(
        addr,
        Duration::from_millis(1000),
        ReconnectPolicy::probe_default(52),
    )
    .expect("connect through the interposer");

    let writes = 20u32;
    for seq in 0..writes {
        let id = PostId::new(AuthorId(0), seq);
        let post = Post::new(id, format!("post {id}"), LocalTime::from_nanos(i64::from(seq)));
        match client.call(ClientOp::Write(post)).expect("write survives resets") {
            OpResult::WriteAck(acked) => assert_eq!(acked, id),
            other => panic!("unexpected write reply: {other:?}"),
        }
    }
    let posts = match client.call(ClientOp::Read).expect("read survives resets") {
        OpResult::ReadOk(posts) => posts,
        other => panic!("unexpected read reply: {other:?}"),
    };

    server.request_stop();
    proxy.request_stop();
    let ledger = proxy.join();
    server.join();

    assert!(ledger.resets > 0, "the reset arm must actually tear connections: {ledger:?}");
    assert!(client.reconnects() > 0, "the client must have re-dialed at least once");
    assert_eq!(
        posts.len(),
        writes as usize,
        "idempotent resend: no dropped and no duplicated writes"
    );
}

/// Graceful degradation under connection pressure: a server capped at
/// two connections answers the overflow with typed `busy` frames. The
/// load generator backs off and retries, keeps making progress on the
/// admitted connections, and both sides count the sheds.
#[test]
fn overloaded_server_sheds_busy_frames_and_load_still_progresses() {
    let server = WireServer::start(&ServeConfig {
        max_connections: 2,
        ..ServeConfig::loopback(ServiceKind::Blogger, 53)
    })
    .expect("bind");
    let metrics = MetricsRegistry::new();
    let report = run_load(
        &LoadConfig {
            connections: 8,
            pipeline: 4,
            threads: 2,
            keys: 2,
            duration: Duration::from_millis(500),
            warmup: Duration::from_millis(100),
            seed_posts: 4,
            ..LoadConfig::loopback(server.addrs()[0].1)
        },
        &metrics,
    )
    .expect("load");
    server.request_stop();
    let server_metrics = server.join();

    assert!(report.ops > 0, "admitted connections still make progress");
    assert!(report.busy_sheds > 0, "overflow connections must see busy frames: {report:?}");
    let json = metrics.to_json().to_pretty();
    assert!(json.contains("wire.load.busy_sheds"), "{json}");
    assert!(
        server_metrics.contains("wire.server.busy_sheds"),
        "server counts its sheds: {server_metrics}"
    );
}

/// The acceptance scenario: a quorum replica is crashed and restarted by
/// the fault driver, rejoins via `cpj1` state transfer (narrated), and a
/// post-rejoin probe over real TCP analyzes clean on every checker.
#[test]
fn quorum_crash_rejoin_completes_state_transfer_and_probes_clean() {
    let server = WireServer::start(&ServeConfig::loopback(ServiceKind::Quorum, 54)).expect("bind");

    // Seed real state first so the transfer has posts to move.
    let warmup =
        ProbeConfig::loopback(ServiceKind::Quorum, TestKind::Test2, server.addrs().to_vec(), 54);
    let seeded = run_probe(&warmup).expect("warmup probe");
    assert!(seeded.completed);

    let plan = FaultPlan::new(54).with(FaultEvent::CrashCycle {
        target: 1,
        at: SimTime::ZERO,
        down_for: SimDuration::from_millis(100),
        up_for: SimDuration::ZERO,
        cycles: 1,
    });
    let mut narration = Vec::new();
    let executed = drive_service_actions(&server, &plan, |line| narration.push(line));
    assert_eq!(executed, 2, "one crash and one recover");
    let joined = narration.join("\n");
    assert!(joined.contains("replica n1 crashed"), "{joined}");
    assert!(joined.contains("state transfer complete"), "{joined}");

    let after =
        ProbeConfig::loopback(ServiceKind::Quorum, TestKind::Test2, server.addrs().to_vec(), 55);
    let result = run_probe(&after).expect("post-rejoin probe");
    server.request_stop();
    server.join();

    assert!(result.completed, "post-rejoin probe finishes its quota");
    assert!(!result.salvaged);
    assert!(
        result.analysis.is_clean(),
        "a rejoined majority-quorum replica must hide nothing from the checkers"
    );
}

/// The consensus-arm acceptance scenario: the live pbft leader (view 1
/// leads at replica 1) is killed mid-run by the fault driver, forcing a
/// narrated view change; the ex-leader rejoins via `cpj1` state
/// transfer; and a post-rejoin probe over real TCP analyzes clean on
/// every checker.
#[test]
fn pbft_leader_kill_forces_a_live_view_change_and_probes_clean() {
    let server = WireServer::start(&ServeConfig::loopback(ServiceKind::Pbft, 56)).expect("bind");
    let (view, leader, changes) = server.pbft_status().expect("pbft arm reports status");
    assert_eq!((view, leader, changes), (1, 1, 0), "boot: view 1, leader n1, no changes");

    // Seed real state first so the transfer has posts to move.
    let warmup =
        ProbeConfig::loopback(ServiceKind::Pbft, TestKind::Test2, server.addrs().to_vec(), 56);
    let seeded = run_probe(&warmup).expect("warmup probe");
    assert!(seeded.completed);

    // Kill the leader itself: the surviving replicas rotate the view.
    let plan = FaultPlan::new(56).with(FaultEvent::CrashCycle {
        target: 1,
        at: SimTime::ZERO,
        down_for: SimDuration::from_millis(100),
        up_for: SimDuration::ZERO,
        cycles: 1,
    });
    let mut narration = Vec::new();
    let executed = drive_service_actions(&server, &plan, |line| narration.push(line));
    assert_eq!(executed, 2, "one crash and one recover");
    let joined = narration.join("\n");
    assert!(joined.contains("replica n1 crashed"), "{joined}");
    assert!(joined.contains("pbft view change: view 2, new leader n2"), "{joined}");
    assert!(joined.contains("state transfer complete"), "{joined}");
    let (view, leader, changes) = server.pbft_status().expect("status after the kill");
    assert_eq!((view, leader, changes), (2, 2, 1), "the view rotated exactly once");

    let after =
        ProbeConfig::loopback(ServiceKind::Pbft, TestKind::Test2, server.addrs().to_vec(), 57);
    let result = run_probe(&after).expect("post-rejoin probe");
    server.request_stop();
    server.join();

    assert!(result.completed, "post-rejoin probe finishes its quota");
    assert!(!result.salvaged);
    assert!(
        result.analysis.is_clean(),
        "an ordered log with a rotated leader must hide nothing from the checkers"
    );
}

/// A seeded `chaos --wire` sweep journals its per-level results; a
/// resumed sweep splices them back and reproduces the report
/// byte-for-byte without re-running a single live level.
#[test]
fn wire_chaos_sweep_resume_is_byte_identical() {
    let journal =
        std::env::temp_dir().join(format!("conprobe-wire-chaos-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&journal);

    let fresh = execute(
        parse(&to_args(&format!(
            "chaos --service blogger --test 2 --seed 9 --levels 1 --wire --journal {}",
            journal.display()
        )))
        .unwrap(),
    )
    .expect("fresh wire sweep");
    assert!(fresh.contains("wire chaos sweep"), "{fresh}");
    assert!(fresh.contains("level 0"), "{fresh}");
    assert!(fresh.contains("level 1"), "{fresh}");

    let resumed = execute(
        parse(&to_args(&format!(
            "chaos --service blogger --test 2 --seed 9 --levels 1 --wire --resume {}",
            journal.display()
        )))
        .unwrap(),
    )
    .expect("resumed wire sweep");
    assert_eq!(fresh, resumed, "splice reproduces the live sweep byte-for-byte");
    let _ = std::fs::remove_file(&journal);
}

fn to_args(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_string).collect()
}
