//! The methodology beyond three agents: Test 1's staggered chain, trigger
//! pairs, completion condition and the checkers all generalize to any agent
//! count.

use conprobe::core::{AgentId, AnomalyKind};
use conprobe::harness::proto::{test1_trigger_pairs, TestKind};
use conprobe::harness::runner::{run_one_test, TestConfig};
use conprobe::harness::stats;
use conprobe::services::ServiceKind;
use conprobe::sim::net::Region;

fn regions(n: usize) -> Vec<Region> {
    let pool =
        [Region::Oregon, Region::Tokyo, Region::Ireland, Region::Virginia, Region::Datacenter(7)];
    (0..n).map(|i| pool[i % pool.len()]).collect()
}

#[test]
fn five_agent_test1_runs_the_full_chain() {
    let mut config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test1);
    config.agent_regions = regions(5);
    let r = run_one_test(&config, 3);
    assert!(r.completed);
    assert_eq!(r.writes_total, 10, "M1..M10: two writes per agent");
    assert_eq!(r.reads_per_agent.len(), 5);
    assert!(r.analysis.is_clean(), "Blogger stays clean with five agents");
    // The chain is honored: agent i's first write happens after it saw
    // agent i-1's second write.
    for i in 1..5u32 {
        let trigger = conprobe::store::PostId::new(conprobe::store::AuthorId(i - 1), 2);
        let own_first =
            r.trace.writes_by(AgentId(i)).first().map(|(op, _)| op.invoke).expect("agent wrote");
        let saw_trigger = r
            .trace
            .reads_by(AgentId(i))
            .iter()
            .filter(|read| read.read_seq().unwrap().contains(&trigger))
            .map(|read| read.response)
            .min()
            .expect("agent observed its trigger");
        assert!(saw_trigger <= own_first, "agent {i} wrote before observing its trigger");
    }
}

#[test]
fn two_agent_test2_measures_divergence() {
    let mut config = TestConfig::paper(ServiceKind::GooglePlus, TestKind::Test2);
    config.agent_regions = vec![Region::Oregon, Region::Ireland];
    let r = run_one_test(&config, 4);
    assert!(r.completed);
    assert_eq!(r.writes_total, 2);
    // Cross-DC pair → divergence machinery engages.
    assert_eq!(r.analysis.content_windows.len(), 1, "one pair only");
}

#[test]
fn trigger_pairs_scale_with_agent_count() {
    assert_eq!(test1_trigger_pairs(5).len(), 4);
    assert_eq!(test1_trigger_pairs(2).len(), 1);
}

#[test]
fn stats_helpers_handle_any_agent_count() {
    assert_eq!(stats::pairs(2), vec![(0, 1)]);
    assert_eq!(stats::pairs(4).len(), 6);
    assert_eq!(stats::pair_label((0, 1)), "OR-JP");
    assert_eq!(stats::pair_label((3, 4)), "a3-a4");
    let mut config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test2);
    config.agent_regions = regions(4);
    let results = vec![run_one_test(&config, 1)];
    assert_eq!(stats::agent_count(&results), 4);
    assert_eq!(stats::prevalence(&results, AnomalyKind::ContentDivergence), 0.0);
}
