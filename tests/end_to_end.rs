//! Cross-crate integration tests: the paper's qualitative findings, as
//! assertions over full measurement runs.

use conprobe::core::{AgentId, AnomalyKind};
use conprobe::harness::proto::TestKind;
use conprobe::harness::runner::{run_one_test, TestConfig};
use conprobe::harness::stats;
use conprobe::services::ServiceKind;

fn run_many(service: ServiceKind, kind: TestKind, n: u64) -> Vec<conprobe::harness::TestResult> {
    let config = TestConfig::paper(service, kind);
    (0..n).map(|seed| run_one_test(&config, seed)).collect()
}

/// §V: "In Blogger we did not detect any anomalies of any type."
#[test]
fn blogger_shows_no_anomalies_in_either_test() {
    for kind in [TestKind::Test1, TestKind::Test2] {
        for r in run_many(ServiceKind::Blogger, kind, 5) {
            assert!(r.completed);
            assert!(
                r.analysis.is_clean(),
                "Blogger must be clean, found {:?}",
                r.analysis.observations.first()
            );
        }
    }
}

/// §V: Facebook Feed exhibits every anomaly; read-your-writes is nearly
/// universal because of the ranked read path's indexing lag.
#[test]
fn facebook_feed_exhibits_all_anomaly_kinds() {
    let t1 = run_many(ServiceKind::FacebookFeed, TestKind::Test1, 8);
    for kind in
        [AnomalyKind::ReadYourWrites, AnomalyKind::MonotonicWrites, AnomalyKind::MonotonicReads]
    {
        let p = stats::prevalence(&t1, kind);
        assert!(p > 40.0, "{kind} prevalence too low on FB Feed: {p}%");
    }
    assert!(
        stats::prevalence(&t1, AnomalyKind::ReadYourWrites) > 90.0,
        "RYW should be near-universal on FB Feed"
    );
    let t2 = run_many(ServiceKind::FacebookFeed, TestKind::Test2, 6);
    assert!(
        stats::prevalence(&t2, AnomalyKind::OrderDivergence) > 90.0,
        "order divergence should be near-universal on FB Feed"
    );
    assert!(stats::prevalence(&t2, AnomalyKind::ContentDivergence) > 50.0);
}

/// §V: Facebook Group shows monotonic-writes violations (the same-second
/// reversal) but neither read-your-writes nor order divergence.
#[test]
fn facebook_group_shows_only_the_reversal_quirk() {
    let t1 = run_many(ServiceKind::FacebookGroup, TestKind::Test1, 8);
    assert!(
        stats::prevalence(&t1, AnomalyKind::MonotonicWrites) > 80.0,
        "the same-second reversal should dominate"
    );
    assert_eq!(stats::prevalence(&t1, AnomalyKind::ReadYourWrites), 0.0);
    let t2 = run_many(ServiceKind::FacebookGroup, TestKind::Test2, 6);
    assert_eq!(stats::prevalence(&t2, AnomalyKind::OrderDivergence), 0.0);
    assert_eq!(
        stats::prevalence(&t2, AnomalyKind::ContentDivergence),
        0.0,
        "without a fault episode, the single store never diverges"
    );
}

/// §V: the FB Group reversal is *deterministic*: every agent observes the
/// same reversed order.
#[test]
fn fbgroup_reversal_is_observed_consistently_by_all_agents() {
    let results = run_many(ServiceKind::FacebookGroup, TestKind::Test1, 6);
    let affected: Vec<_> =
        results.iter().filter(|r| r.analysis.has(AnomalyKind::MonotonicWrites)).collect();
    assert!(!affected.is_empty());
    for r in &affected {
        let observers = r.analysis.agents_observing(AnomalyKind::MonotonicWrites);
        assert_eq!(
            observers.len(),
            3,
            "the deterministic ordering scheme is visible to everyone: {observers:?}"
        );
    }
}

/// §V: Google+ divergence is asymmetric — Oregon and Tokyo "are connecting
/// to the same data center", so their pair diverges far less than the
/// cross-DC pairs.
#[test]
fn gplus_oregon_tokyo_pair_is_special() {
    let t2 = run_many(ServiceKind::GooglePlus, TestKind::Test2, 10);
    let per_pair = stats::pair_prevalence(&t2, AnomalyKind::ContentDivergence);
    let or_jp = per_pair[&(0, 1)];
    let or_ir = per_pair[&(0, 2)];
    let jp_ir = per_pair[&(1, 2)];
    assert!(
        or_jp < or_ir && or_jp < jp_ir,
        "OR-JP ({or_jp}%) must diverge less than OR-IR ({or_ir}%) / JP-IR ({jp_ir}%)"
    );
    assert!(or_ir > 50.0 && jp_ir > 50.0, "cross-DC pairs diverge frequently");
}

/// §IV completion conditions: Test 1 ends once M6 is globally visible;
/// Test 2 ends at the read quota.
#[test]
fn completion_conditions_hold() {
    let config1 = TestConfig::paper(ServiceKind::GooglePlus, TestKind::Test1);
    let r1 = run_one_test(&config1, 3);
    assert!(r1.completed);
    assert_eq!(r1.writes_total, 6, "Test 1 writes exactly M1..M6");
    // Every agent's final read contains M6.
    let m6 = conprobe::store::PostId::new(conprobe::store::AuthorId(2), 2);
    for agent in 0..3 {
        let reads = r1.trace.reads_by(AgentId(agent));
        let last = reads.last().expect("agent read at least once");
        let any_m6 = reads.iter().any(|r| r.read_seq().unwrap().contains(&m6));
        assert!(any_m6, "agent {agent} never saw M6 yet test completed");
        let _ = last;
    }

    let config2 = TestConfig::paper(ServiceKind::GooglePlus, TestKind::Test2);
    let r2 = run_one_test(&config2, 3);
    assert!(r2.completed);
    assert_eq!(r2.writes_total, 3, "Test 2 writes one message per agent");
    for n in &r2.reads_per_agent {
        assert_eq!(*n, config2.reads_target);
    }
}

/// Test 2's writes are near-simultaneous in true time thanks to the
/// coordinator's delta-corrected start instants.
#[test]
fn test2_writes_are_synchronized() {
    let config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test2);
    let r = run_one_test(&config, 9);
    let writes = r.trace.writes();
    assert_eq!(writes.len(), 3);
    let invokes: Vec<i64> = writes.iter().map(|(op, _)| op.invoke.as_nanos()).collect();
    let spread = invokes.iter().max().unwrap() - invokes.iter().min().unwrap();
    // Corrected-timeline spread should be well under the read period; the
    // residual is clock-sync error (≤ half RTT ≈ 109 ms) twice over.
    assert!(
        spread < 250_000_000,
        "write spread {}ms too large for 'simultaneous' writes",
        spread / 1_000_000
    );
}

/// The adaptive Test 2 read schedule: `fast_reads` at 300 ms, then 1 s.
#[test]
fn test2_read_schedule_is_adaptive() {
    let config = TestConfig::paper(ServiceKind::FacebookFeed, TestKind::Test2);
    let r = run_one_test(&config, 5);
    let reads = r.trace.reads_by(AgentId(0));
    assert_eq!(reads.len() as u32, config.reads_target);
    let gaps: Vec<i64> =
        reads.windows(2).map(|w| w[1].invoke.as_nanos() - w[0].invoke.as_nanos()).collect();
    let fast = &gaps[..(config.fast_reads as usize - 1)];
    let slow = &gaps[config.fast_reads as usize..];
    let fast_mean = fast.iter().sum::<i64>() as f64 / fast.len() as f64;
    let slow_mean = slow.iter().sum::<i64>() as f64 / slow.len() as f64;
    assert!(
        (fast_mean - 300e6).abs() < 50e6,
        "fast phase should tick at ~300ms, got {}ms",
        fast_mean / 1e6
    );
    assert!(
        (slow_mean - 1e9).abs() < 100e6,
        "slow phase should tick at ~1s, got {}ms",
        slow_mean / 1e6
    );
}
