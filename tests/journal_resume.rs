//! Resume determinism, end to end (ISSUE 4 acceptance bar).
//!
//! A campaign interrupted mid-run — by an injected worker panic or by the
//! process being aborted mid-append (the journal's SIGKILL drill) — and
//! resumed via `--resume` must produce *byte-identical* study output to
//! the same campaign run uninterrupted. The in-process tests drive the
//! CLI logic layer directly; the subprocess test murders a real
//! `conprobe` binary with `CONPROBE_ABORT_AFTER_JOURNALED` and resumes
//! it, which also exercises truncated-tail recovery on a journal the
//! dying process had no chance to close cleanly.

use conprobe::cli::{execute, parse};
use conprobe_harness::journal::Journal;
use std::path::PathBuf;
use std::process::Command as Proc;

fn args(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_string).collect()
}

fn run_cli(s: &str) -> String {
    execute(parse(&args(s)).expect("parse")).expect("execute")
}

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("conprobe-resume-{tag}-{}.jsonl", std::process::id()))
}

/// Tests in this binary run in parallel but `CONPROBE_INJECT_PANIC` is
/// process-global; every test that sets it (or computes a baseline that
/// must see it unset) serializes on this lock.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn campaign_with_panicking_instance_completes_with_quarantine() {
    let _env = ENV_LOCK.lock().unwrap();
    std::env::set_var("CONPROBE_INJECT_PANIC", "1");
    let out = run_cli("campaign --service blogger --test 2 --tests 3 --seed 5");
    std::env::remove_var("CONPROBE_INJECT_PANIC");
    assert!(out.contains("2/3 completed"), "siblings survive: {out}");
    assert!(out.contains("QUARANTINED instance 1"), "{out}");
    assert!(out.contains("injected panic"), "{out}");
}

#[test]
fn interrupted_campaign_resumed_via_cli_is_byte_identical() {
    let _env = ENV_LOCK.lock().unwrap();
    let journal = temp("cli");
    let journal_s = journal.to_string_lossy();
    // Baseline: same campaign, no journal, uninterrupted.
    let want = run_cli("campaign --service blogger --test 2 --tests 4 --seed 9");
    // First attempt: instance 2 panics; the rest are journaled.
    std::env::set_var("CONPROBE_INJECT_PANIC", "2");
    let first = run_cli(&format!(
        "campaign --service blogger --test 2 --tests 4 --seed 9 --journal {journal_s}"
    ));
    std::env::remove_var("CONPROBE_INJECT_PANIC");
    assert!(first.contains("QUARANTINED instance 2"), "{first}");
    // Resume: the crashed record is retried, completed ones spliced.
    let resumed = run_cli(&format!(
        "campaign --service blogger --test 2 --tests 4 --seed 9 --resume {journal_s}"
    ));
    assert_eq!(resumed, want, "resumed stdout must be byte-identical to uninterrupted");
    std::fs::remove_file(&journal).ok();
}

#[test]
fn interrupted_repro_resumed_via_cli_is_byte_identical() {
    let _env = ENV_LOCK.lock().unwrap();
    let journal = temp("repro");
    let journal_s = journal.to_string_lossy();
    let want = run_cli("repro --tests 2 --seed 3");
    std::env::set_var("CONPROBE_INJECT_PANIC", "0");
    let first = run_cli(&format!("repro --tests 2 --seed 3 --journal {journal_s}"));
    std::env::remove_var("CONPROBE_INJECT_PANIC");
    assert!(first.contains("QUARANTINED instance 0"), "{first}");
    let resumed = run_cli(&format!("repro --tests 2 --seed 3 --resume {journal_s}"));
    assert_eq!(resumed, want, "resumed mini-study must match the uninterrupted one");
    std::fs::remove_file(&journal).ok();
}

#[test]
fn chaos_sweep_resumes_from_its_journal() {
    let journal = temp("chaos");
    let journal_s = journal.to_string_lossy();
    let want = run_cli("chaos --service blogger --test 1 --seed 3 --levels 2");
    let first = run_cli(&format!(
        "chaos --service blogger --test 1 --seed 3 --levels 2 --journal {journal_s}"
    ));
    assert_eq!(first, want);
    // Sever the journal's tail mid-record, as a crash would.
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() - 9]).unwrap();
    let resumed = run_cli(&format!(
        "chaos --service blogger --test 1 --seed 3 --levels 2 --resume {journal_s}"
    ));
    assert_eq!(resumed, want, "resumed sweep must match the uninterrupted one");
    std::fs::remove_file(&journal).ok();
}

/// Kills a *real* campaign process mid-run (abort after N fsync'd
/// appends — no unwinding, no Drop, the journal file is simply left
/// where the kernel flushed it) and proves the resumed run's report is
/// byte-identical to an uninterrupted one.
#[test]
fn sigkilled_campaign_resumes_to_identical_study_output() {
    let bin = env!("CARGO_BIN_EXE_conprobe");
    let journal = temp("kill");
    let journal_s = journal.to_string_lossy().to_string();
    let campaign =
        ["campaign", "--service", "blogger", "--test", "2", "--tests", "4", "--seed", "7"];

    let clean = Proc::new(bin).args(campaign).output().expect("spawn baseline");
    assert!(clean.status.success());

    let killed = Proc::new(bin)
        .args(campaign)
        .args(["--journal", &journal_s])
        .env("CONPROBE_ABORT_AFTER_JOURNALED", "2")
        .output()
        .expect("spawn doomed campaign");
    assert!(!killed.status.success(), "the drill must abort the process");
    let recovered = Journal::recover(&journal).expect("journal survives the abort");
    assert!(!recovered.records.is_empty(), "completed tests were durably journaled");
    assert!(recovered.records.len() < 4, "the abort struck mid-campaign");

    let resumed = Proc::new(bin)
        .args(campaign)
        .args(["--resume", &journal_s])
        .output()
        .expect("spawn resumed campaign");
    assert!(resumed.status.success(), "{}", String::from_utf8_lossy(&resumed.stderr));
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&clean.stdout),
        "resumed study output must be byte-identical to the uninterrupted run"
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(stderr.contains("spliced from the journal"), "{stderr}");

    // And the inspector reads the final journal cleanly.
    let inspect =
        Proc::new(bin).args(["journal", "inspect", &journal_s]).output().expect("inspect");
    assert!(inspect.status.success());
    let text = String::from_utf8_lossy(&inspect.stdout);
    assert!(text.contains("blogger/test2"), "{text}");
    assert!(text.contains("tail: clean"), "{text}");
    std::fs::remove_file(&journal).ok();
}
