//! Golden-seed determinism: the perf overhaul (snapshot cache, shared
//! `TraceIndex`) must be a pure optimization — traces, anomaly counts,
//! divergence windows and the aggregated `study.json` must stay
//! byte-identical to the pre-change tree.
//!
//! The literals below were captured with `conprobe-bench --golden` on the
//! tree *before* the optimizations landed. If a change legitimately alters
//! simulation or analysis semantics, re-capture with the same command and
//! say so in the commit; if these fail on a perf-only change, the change
//! is wrong.

use conprobe::bench::{
    fnv64, golden_fingerprint, golden_fingerprint_observed, study_fingerprint, GoldenFingerprint,
    GOLDEN_CASES,
};
use conprobe_harness::proto::TestKind;
use conprobe_services::ServiceKind;

fn expect_case(
    service: ServiceKind,
    kind: TestKind,
    seed: u64,
    trace_hash: u64,
    counts: [usize; 6],
    content_windows: usize,
    order_windows: usize,
) {
    let got = golden_fingerprint(service, kind, seed);
    let want = GoldenFingerprint {
        trace_hash,
        anomaly_counts: ["RYW", "MW", "MR", "WFR", "CD", "OD"]
            .iter()
            .zip(counts)
            .map(|(k, n)| (*k, n))
            .collect(),
        content_windows,
        order_windows,
    };
    assert_eq!(
        got,
        want,
        "{service} {kind} seed {seed} diverged from the pre-optimization golden:\n\
         got  {}\nwant {}",
        got.render(),
        want.render()
    );
}

#[test]
fn blogger_test1_matches_pre_optimization_golden() {
    expect_case(
        ServiceKind::Blogger,
        TestKind::Test1,
        1,
        0x79922a5b44b077b5,
        [0, 0, 0, 0, 0, 0],
        0,
        0,
    );
}

#[test]
fn gplus_test2_matches_pre_optimization_golden() {
    expect_case(
        ServiceKind::GooglePlus,
        TestKind::Test2,
        2,
        0x22448d294ea4353d,
        [0, 0, 1, 0, 2, 2],
        2,
        2,
    );
}

#[test]
fn fbgroup_test1_matches_pre_optimization_golden() {
    expect_case(
        ServiceKind::FacebookGroup,
        TestKind::Test1,
        7,
        0xc0a82985ad1b74e9,
        [0, 24, 0, 0, 0, 0],
        0,
        0,
    );
}

#[test]
fn fbfeed_test2_matches_pre_optimization_golden() {
    expect_case(
        ServiceKind::FacebookFeed,
        TestKind::Test2,
        3,
        0x0589a1a0f28f1c58,
        [4, 0, 5, 0, 3, 3],
        3,
        29,
    );
}

#[test]
fn study_json_matches_pre_optimization_golden() {
    assert_eq!(
        study_fingerprint(),
        0x2b224f0e595d0842,
        "aggregated study.json bytes diverged from the pre-optimization golden"
    );
}

#[test]
fn observability_leaves_every_golden_fingerprint_unchanged() {
    // The observability layer's core guarantee: metrics and the event log
    // may *count* the simulation but never alter it. Running every golden
    // case with a full sink (registry + Debug-level log) must reproduce
    // the uninstrumented fingerprints bit for bit.
    for (service, kind, seed) in GOLDEN_CASES {
        let plain = golden_fingerprint(service, kind, seed);
        let observed = golden_fingerprint_observed(service, kind, seed);
        assert_eq!(
            plain,
            observed,
            "{service} {kind} seed {seed}: observability perturbed the run:\n\
             off {}\non  {}",
            plain.render(),
            observed.render()
        );
    }
}

#[test]
fn adding_the_sixth_catalog_entry_left_the_paper_matrix_untouched() {
    // Catalog invariance: growing the service catalog (the Pbft arm is
    // the sixth entry) must be purely additive. The first five catalog
    // positions are pinned — journals, CI greps and docs all reference
    // them by name — the paper matrix keeps exactly its four services,
    // and (per the golden tests above, which run on the same tree) every
    // golden fingerprint stays byte-identical.
    assert_eq!(ServiceKind::CATALOG.len(), 6);
    assert_eq!(
        &ServiceKind::CATALOG[..5],
        &[
            ServiceKind::GooglePlus,
            ServiceKind::Blogger,
            ServiceKind::FacebookFeed,
            ServiceKind::FacebookGroup,
            ServiceKind::Quorum,
        ],
        "existing catalog positions are pinned; new arms append only"
    );
    assert_eq!(ServiceKind::CATALOG[5], ServiceKind::Pbft);
    assert_eq!(
        ServiceKind::ALL,
        [
            ServiceKind::GooglePlus,
            ServiceKind::Blogger,
            ServiceKind::FacebookFeed,
            ServiceKind::FacebookGroup,
        ],
        "the paper matrix must not gain a control arm"
    );
    assert!(!GOLDEN_CASES
        .iter()
        .any(|(s, _, _)| *s == ServiceKind::Pbft || *s == ServiceKind::Quorum));
}

#[test]
fn fingerprint_hash_is_platform_stable() {
    // FNV-1a, not RandomState: the goldens must mean the same thing on
    // every machine.
    assert_eq!(fnv64(b"conprobe"), {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in b"conprobe" {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    });
}
