//! The PBFT-style ordered-log consensus arm, end to end (ISSUE 10
//! acceptance bar).
//!
//! The `Pbft` service orders every client operation — reads included —
//! through a stable-leader pre-prepare/prepare/commit log with 2f+1
//! certificates, so every checker must come through clean in clean runs
//! AND under the chaos plan's crash/recover cycle, which kills the
//! initial leader (replica 1, Tokyo) mid-run and forces a real view
//! change. Under a fixed seed the whole thing — trace, view-change and
//! recovery narration, state-transfer stream hash — must be
//! byte-deterministic.

use conprobe::cli::chaos_plan;
use conprobe::core::AnomalyKind;
use conprobe::harness::proto::TestKind;
use conprobe::harness::runner::{run_one_test, TestConfig, TestResult};
use conprobe::services::ServiceKind;
use conprobe_obs::{EventLog, ObsSink, Severity};

/// The consensus arm in fair weather: no faults, every checker, multiple
/// seeds and both test designs — zero anomaly observations, always.
#[test]
fn clean_pbft_runs_are_anomaly_free_across_all_six_checkers() {
    for kind in [TestKind::Test1, TestKind::Test2] {
        for seed in [1, 7, 42] {
            let config = TestConfig::paper(ServiceKind::Pbft, kind);
            let r = run_one_test(&config, seed);
            assert!(r.completed, "{kind} seed {seed} must complete");
            for anomaly in AnomalyKind::ALL {
                assert_eq!(
                    r.analysis.count(anomaly),
                    0,
                    "{kind} seed {seed}: {anomaly} observed against the ordered-log arm"
                );
            }
            assert!(r.analysis.is_clean());
        }
    }
}

/// Runs the level-3 chaos cell (loss burst + degraded link + link flap +
/// a replica crash/recover cycle aimed at the initial leader) against
/// the pbft service, capturing the service event log and the shared
/// consensus counters.
fn chaos_crash_run(seed: u64) -> (TestResult, Vec<String>, u64) {
    let sink = ObsSink::with_log(
        EventLog::new(4096).with_min_severity(Severity::Info).with_target_prefix("services"),
    );
    let mut config = TestConfig::paper(ServiceKind::Pbft, TestKind::Test2);
    config.fault_plan = chaos_plan(3, seed);
    config.obs = Some(sink.clone());
    let r = run_one_test(&config, seed);
    let view_changes = sink.metrics.counter("services.pbft.view_changes").get();
    let events = sink.log.drain().iter().map(|e| e.render()).collect();
    (r, events, view_changes)
}

/// The crash arm: replica 1 — the view-1 leader — dies at 7 s and
/// rejoins at 11 s. The surviving replicas must suspect it, vote, and
/// install a new view (observable in the `services.pbft.view_changes`
/// counter and the narration); read fencing must hold across the rejoin;
/// and all six checkers must still report zero anomalies.
#[test]
fn leader_crash_forces_a_view_change_and_stays_clean() {
    let (r, events, view_changes) = chaos_crash_run(42);
    assert!(r.completed, "the surviving 2f+1 replicas keep the log live");
    for anomaly in AnomalyKind::ALL {
        assert_eq!(
            r.analysis.count(anomaly),
            0,
            "{anomaly} observed across a leader crash + view change:\n{events:#?}"
        );
    }
    assert!(
        view_changes >= 1,
        "killing the leader must fire at least one view change (counter: {view_changes})"
    );
    assert!(
        r.fault_ledger.actions.len() >= 2,
        "crash + recover must be in the ledger: {:?}",
        r.fault_ledger.actions
    );
    assert!(events.iter().any(|e| e.contains("crashed")), "crash event missing: {events:#?}");
    assert!(
        events.iter().any(|e| e.contains("view change")),
        "view-change narration missing: {events:#?}"
    );
    assert!(
        events.iter().any(|e| e.contains("state transfer complete")),
        "the rejoining ex-leader must complete a state transfer: {events:#?}"
    );
}

/// Same seed, same plan → byte-identical trace and byte-identical
/// consensus narration: suspicion votes, the new-view install, the
/// `cpj1` catch-up stream hash. This pins the whole view-change and
/// state-transfer machinery as fully deterministic.
#[test]
fn view_change_and_state_transfer_are_byte_deterministic() {
    let (r1, e1, v1) = chaos_crash_run(42);
    let (r2, e2, v2) = chaos_crash_run(42);
    assert_eq!(r1.trace, r2.trace, "traces must be byte-identical under a fixed seed");
    assert_eq!(e1, e2, "consensus narration (incl. stream hash) must be deterministic");
    assert_eq!(v1, v2, "the view-change count is part of the deterministic outcome");
    assert!(
        e1.iter().any(|e| e.contains("stream hash")),
        "the transfer narration carries the catch-up stream hash: {e1:#?}"
    );
}

/// The paper's campaign matrix — and with it every golden fingerprint —
/// deliberately excludes both control arms.
#[test]
fn the_paper_matrix_does_not_gain_the_consensus_arm() {
    assert_eq!(ServiceKind::ALL.len(), 4);
    assert!(!ServiceKind::ALL.contains(&ServiceKind::Pbft));
    assert!(ServiceKind::CATALOG.contains(&ServiceKind::Pbft));
}
