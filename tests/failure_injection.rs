//! Robustness of the measurement harness under injected faults: message
//! loss, partitions, and hostile clocks. The paper's infrastructure had to
//! survive a real WAN; ours must survive a simulated-adversarial one.

use conprobe::core::AnomalyKind;
use conprobe::harness::proto::TestKind;
use conprobe::harness::runner::{run_one_test, TestConfig};
use conprobe::services::ServiceKind;
use conprobe::sim::ClockConfig;

/// The full-test Tokyo partition: divergence is detected, the test times
/// out or completes, and the harness still produces a coherent trace.
#[test]
fn partition_produces_divergence_and_a_coherent_trace() {
    let mut config = TestConfig::paper(ServiceKind::FacebookGroup, TestKind::Test2);
    config.tokyo_partition = true;
    for seed in 0..3 {
        let r = run_one_test(&config, seed);
        assert!(r.partitioned);
        assert!(r.has(AnomalyKind::ContentDivergence));
        // The Tokyo agent still performed its reads (it could reach its own
        // front door throughout).
        assert!(r.reads_per_agent[1] > 0);
        // The divergence windows for the Tokyo pairs are long (the fault
        // heals after ~11 s) but eventually close thanks to anti-entropy.
        let w = r
            .analysis
            .pair_windows(conprobe::core::WindowKind::Content, conprobe::core::AgentId(0), conprobe::core::AgentId(1))
            .expect("windows computed");
        assert!(w.any_divergence());
    }
}

/// Partitioned Test 1 cannot complete (M6 never reaches Tokyo while the
/// partition holds and the test is shorter than the heal time when
/// max_duration is small) — the coordinator must time out gracefully.
#[test]
fn partitioned_test1_times_out_gracefully() {
    let mut config = TestConfig::paper(ServiceKind::FacebookGroup, TestKind::Test1);
    config.tokyo_partition = true;
    config.max_duration = conprobe::sim::SimDuration::from_secs(6); // < heal time
    let r = run_one_test(&config, 1);
    assert!(!r.completed, "completion requires Tokyo to see M6");
    // The trace still contains every agent's log.
    assert_eq!(r.reads_per_agent.len(), 3);
    assert!(r.reads_per_agent.iter().all(|n| *n > 0));
}

/// Extreme clock offsets and drift do not break the methodology: the
/// Cristian-style sync absorbs the offset, and anomaly detection (which
/// never compares across agents' raw clocks) is unaffected.
#[test]
fn hostile_clocks_do_not_create_false_anomalies() {
    let mut config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test1);
    config.agent_clocks = ClockConfig {
        max_initial_offset_nanos: 60_000_000_000, // ±60 s
        max_drift_ppm: 1_000.0,                   // ±1000 ppm (86 s/day)
    };
    for seed in 0..4 {
        let r = run_one_test(&config, seed);
        assert!(r.completed, "seed {seed}");
        assert!(
            r.analysis.is_clean(),
            "hostile clocks must not fabricate anomalies on a linearizable \
             service: {:?}",
            r.analysis.observations.first()
        );
    }
}

/// Under extreme drift the claimed half-RTT uncertainty is no longer a
/// bound by the end of a long test — the estimate decays, which is exactly
/// why the paper re-syncs before every test.
#[test]
fn drift_decays_the_clock_estimate() {
    let mut config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test2);
    config.agent_clocks = ClockConfig { max_initial_offset_nanos: 0, max_drift_ppm: 0.0 };
    let perfect = run_one_test(&config, 2);
    config.agent_clocks = ClockConfig {
        max_initial_offset_nanos: 1_000_000_000,
        max_drift_ppm: 2_000.0,
    };
    let drifty = run_one_test(&config, 2);
    let perfect_err: i64 = perfect.clock_error_nanos.iter().sum();
    let drifty_err: i64 = drifty.clock_error_nanos.iter().sum();
    assert!(
        drifty_err > perfect_err,
        "2000 ppm drift should add measurable estimate error \
         ({perfect_err} vs {drifty_err})"
    );
}

/// The whole pipeline survives a lossy WAN: clock probes are re-sent,
/// agent requests are retransmitted (replicas deduplicate by post id),
/// anti-entropy repairs lost replication pushes, and log collection retries
/// until it has every agent's data.
#[test]
fn lossy_network_is_survivable() {
    for service in [ServiceKind::Blogger, ServiceKind::GooglePlus] {
        let mut config = TestConfig::paper(service, TestKind::Test1);
        config.link_loss = 0.03; // 3 % of all messages vanish
        let mut completed = 0;
        for seed in 0..4 {
            let r = run_one_test(&config, seed);
            // Even a timed-out run must still produce a full trace.
            assert_eq!(r.reads_per_agent.len(), 3, "seed {seed}");
            assert!(r.writes_total >= 1, "seed {seed}: some writes must land");
            if r.completed {
                completed += 1;
                assert_eq!(r.writes_total, 6, "completed runs saw all of M1..M6");
            }
        }
        assert!(completed >= 3, "{service}: most lossy runs should still complete");
    }
}

/// Under loss, Blogger must stay anomaly-free: retransmissions and
/// duplicate acknowledgements must not fabricate events or reorderings.
#[test]
fn loss_does_not_fabricate_anomalies_on_a_linearizable_service() {
    let mut config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test2);
    config.link_loss = 0.05;
    for seed in 10..14 {
        let r = run_one_test(&config, seed);
        assert!(
            r.analysis.is_clean(),
            "seed {seed}: loss fabricated {:?}",
            r.analysis.observations.first()
        );
    }
}

/// Crash-fault injection: crashing one Google+ replica mid-test wipes its
/// volatile state. Agents of that DC observe massive monotonic-reads
/// violations (everything they had seen disappears), and anti-entropy
/// restores the state after recovery — a failure mode the black-box
/// methodology detects without any knowledge of the crash.
#[test]
fn replica_crash_is_visible_as_monotonic_reads_violations() {
    use conprobe::harness::runner::CrashFault;
    let mut config = TestConfig::paper(ServiceKind::GooglePlus, TestKind::Test2);
    config.crash_fault = Some(CrashFault {
        replica: 0, // DC-West, serving Oregon and Tokyo
        at: conprobe::sim::SimDuration::from_secs(8),
        down_for: conprobe::sim::SimDuration::from_secs(4),
    });
    let mut mr_hits = 0;
    for seed in 0..3 {
        let r = run_one_test(&config, seed);
        if r.has(AnomalyKind::MonotonicReads) {
            mr_hits += 1;
        }
        // The run still concludes and produces full logs.
        assert_eq!(r.reads_per_agent.len(), 3);
    }
    assert!(
        mr_hits >= 2,
        "state loss at the serving replica must surface as MR violations \
         ({mr_hits}/3 tests)"
    );
}

/// A crash of an unused replica (FB Group's idle Tokyo replica) is
/// invisible to the black-box methodology — faults only matter when they
/// intersect the serving path.
#[test]
fn crash_of_an_idle_replica_is_invisible() {
    use conprobe::harness::runner::CrashFault;
    let mut config = TestConfig::paper(ServiceKind::FacebookGroup, TestKind::Test2);
    config.crash_fault = Some(CrashFault {
        replica: 1, // the idle Tokyo replica
        at: conprobe::sim::SimDuration::from_secs(8),
        down_for: conprobe::sim::SimDuration::from_secs(4),
    });
    let r = run_one_test(&config, 5);
    assert!(r.completed);
    assert!(
        !r.has(AnomalyKind::ContentDivergence) && !r.has(AnomalyKind::MonotonicReads),
        "an idle replica's crash must not affect observations"
    );
}

/// A server-side rate limit throttles over-eager requests, and the agents'
/// backoff keeps the test progressing: retried writes keep Test 1's
/// staggered chain alive.
#[test]
fn server_side_rate_limit_is_survivable() {
    use conprobe::services::catalog;
    use conprobe::services::ReplicaParams;

    // Blogger with a server-enforced 350 ms per-client interval: the
    // agents' 300 ms read cadence plus the write bursts will trip it.
    let mut topo = catalog::topology(ServiceKind::Blogger);
    for (_, params) in &mut topo.replicas {
        *params = ReplicaParams {
            rate_limit: Some(conprobe::sim::SimDuration::from_millis(350)),
            ..params.clone()
        };
    }
    let mut config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test1);
    config.service_override = Some(topo);
    let r = run_one_test(&config, 2);
    assert!(r.completed, "backoff must keep the test progressing");
    assert_eq!(r.writes_total, 6, "all writes eventually accepted");
    assert!(
        r.analysis.is_clean(),
        "throttling must not fabricate anomalies: {:?}",
        r.analysis.observations.first()
    );
}
