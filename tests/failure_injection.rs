//! Robustness of the measurement harness under injected faults: message
//! loss, partitions, and hostile clocks. The paper's infrastructure had to
//! survive a real WAN; ours must survive a simulated-adversarial one.

use conprobe::core::AnomalyKind;
use conprobe::harness::proto::TestKind;
use conprobe::harness::runner::{run_one_test, TestConfig};
use conprobe::services::ServiceKind;
use conprobe::sim::net::Region;
use conprobe::sim::{ClockConfig, FaultEvent, FaultPlan, LinkScope, SimDuration, SimTime};

/// The full-test Tokyo partition: divergence is detected, the test times
/// out or completes, and the harness still produces a coherent trace.
#[test]
fn partition_produces_divergence_and_a_coherent_trace() {
    let mut config = TestConfig::paper(ServiceKind::FacebookGroup, TestKind::Test2);
    config.tokyo_partition = true;
    for seed in 0..3 {
        let r = run_one_test(&config, seed);
        assert!(r.partitioned);
        assert!(r.has(AnomalyKind::ContentDivergence));
        // The Tokyo agent still performed its reads (it could reach its own
        // front door throughout).
        assert!(r.reads_per_agent[1] > 0);
        // The divergence windows for the Tokyo pairs are long (the fault
        // heals after ~11 s) but eventually close thanks to anti-entropy.
        let w = r
            .analysis
            .pair_windows(
                conprobe::core::WindowKind::Content,
                conprobe::core::AgentId(0),
                conprobe::core::AgentId(1),
            )
            .expect("windows computed");
        assert!(w.any_divergence());
    }
}

/// Partitioned Test 1 cannot complete (M6 never reaches Tokyo while the
/// partition holds and the test is shorter than the heal time when
/// max_duration is small) — the coordinator must time out gracefully.
#[test]
fn partitioned_test1_times_out_gracefully() {
    let mut config = TestConfig::paper(ServiceKind::FacebookGroup, TestKind::Test1);
    config.tokyo_partition = true;
    config.max_duration = conprobe::sim::SimDuration::from_secs(6); // < heal time
    let r = run_one_test(&config, 1);
    assert!(!r.completed, "completion requires Tokyo to see M6");
    // The trace still contains every agent's log.
    assert_eq!(r.reads_per_agent.len(), 3);
    assert!(r.reads_per_agent.iter().all(|n| *n > 0));
}

/// Extreme clock offsets and drift do not break the methodology: the
/// Cristian-style sync absorbs the offset, and anomaly detection (which
/// never compares across agents' raw clocks) is unaffected.
#[test]
fn hostile_clocks_do_not_create_false_anomalies() {
    let mut config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test1);
    config.agent_clocks = ClockConfig {
        max_initial_offset_nanos: 60_000_000_000, // ±60 s
        max_drift_ppm: 1_000.0,                   // ±1000 ppm (86 s/day)
    };
    for seed in 0..4 {
        let r = run_one_test(&config, seed);
        assert!(r.completed, "seed {seed}");
        assert!(
            r.analysis.is_clean(),
            "hostile clocks must not fabricate anomalies on a linearizable \
             service: {:?}",
            r.analysis.observations.first()
        );
    }
}

/// Under extreme drift the claimed half-RTT uncertainty is no longer a
/// bound by the end of a long test — the estimate decays, which is exactly
/// why the paper re-syncs before every test.
#[test]
fn drift_decays_the_clock_estimate() {
    let mut config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test2);
    config.agent_clocks = ClockConfig { max_initial_offset_nanos: 0, max_drift_ppm: 0.0 };
    let perfect = run_one_test(&config, 2);
    config.agent_clocks =
        ClockConfig { max_initial_offset_nanos: 1_000_000_000, max_drift_ppm: 2_000.0 };
    let drifty = run_one_test(&config, 2);
    let perfect_err: i64 = perfect.clock_error_nanos.iter().sum();
    let drifty_err: i64 = drifty.clock_error_nanos.iter().sum();
    assert!(
        drifty_err > perfect_err,
        "2000 ppm drift should add measurable estimate error \
         ({perfect_err} vs {drifty_err})"
    );
}

/// The whole pipeline survives a lossy WAN: clock probes are re-sent,
/// agent requests are retransmitted (replicas deduplicate by post id),
/// anti-entropy repairs lost replication pushes, and log collection retries
/// until it has every agent's data.
#[test]
fn lossy_network_is_survivable() {
    for service in [ServiceKind::Blogger, ServiceKind::GooglePlus] {
        let mut config = TestConfig::paper(service, TestKind::Test1);
        config.link_loss = 0.03; // 3 % of all messages vanish
        let mut completed = 0;
        for seed in 0..4 {
            let r = run_one_test(&config, seed);
            // Even a timed-out run must still produce a full trace.
            assert_eq!(r.reads_per_agent.len(), 3, "seed {seed}");
            assert!(r.writes_total >= 1, "seed {seed}: some writes must land");
            if r.completed {
                completed += 1;
                assert_eq!(r.writes_total, 6, "completed runs saw all of M1..M6");
            }
        }
        assert!(completed >= 3, "{service}: most lossy runs should still complete");
    }
}

/// Under loss, Blogger must stay anomaly-free: retransmissions and
/// duplicate acknowledgements must not fabricate events or reorderings.
#[test]
fn loss_does_not_fabricate_anomalies_on_a_linearizable_service() {
    let mut config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test2);
    config.link_loss = 0.05;
    for seed in 10..14 {
        let r = run_one_test(&config, seed);
        assert!(
            r.analysis.is_clean(),
            "seed {seed}: loss fabricated {:?}",
            r.analysis.observations.first()
        );
    }
}

/// Crash-fault injection: crashing one Google+ replica mid-test wipes its
/// volatile state. Agents of that DC observe massive monotonic-reads
/// violations (everything they had seen disappears), and anti-entropy
/// restores the state after recovery — a failure mode the black-box
/// methodology detects without any knowledge of the crash.
#[test]
fn replica_crash_is_visible_as_monotonic_reads_violations() {
    use conprobe::harness::runner::CrashFault;
    let mut config = TestConfig::paper(ServiceKind::GooglePlus, TestKind::Test2);
    config.crash_fault = Some(CrashFault {
        replica: 0, // DC-West, serving Oregon and Tokyo
        at: conprobe::sim::SimDuration::from_secs(8),
        down_for: conprobe::sim::SimDuration::from_secs(4),
    });
    let mut mr_hits = 0;
    for seed in 0..3 {
        let r = run_one_test(&config, seed);
        if r.has(AnomalyKind::MonotonicReads) {
            mr_hits += 1;
        }
        // The run still concludes and produces full logs.
        assert_eq!(r.reads_per_agent.len(), 3);
    }
    assert!(
        mr_hits >= 2,
        "state loss at the serving replica must surface as MR violations \
         ({mr_hits}/3 tests)"
    );
}

/// A crash of an unused replica (FB Group's idle Tokyo replica) is
/// invisible to the black-box methodology — faults only matter when they
/// intersect the serving path.
#[test]
fn crash_of_an_idle_replica_is_invisible() {
    use conprobe::harness::runner::CrashFault;
    let mut config = TestConfig::paper(ServiceKind::FacebookGroup, TestKind::Test2);
    config.crash_fault = Some(CrashFault {
        replica: 1, // the idle Tokyo replica
        at: conprobe::sim::SimDuration::from_secs(8),
        down_for: conprobe::sim::SimDuration::from_secs(4),
    });
    let r = run_one_test(&config, 5);
    assert!(r.completed);
    assert!(
        !r.has(AnomalyKind::ContentDivergence) && !r.has(AnomalyKind::MonotonicReads),
        "an idle replica's crash must not affect observations"
    );
}

/// A server-side rate limit throttles over-eager requests, and the agents'
/// backoff keeps the test progressing: retried writes keep Test 1's
/// staggered chain alive.
#[test]
fn server_side_rate_limit_is_survivable() {
    use conprobe::services::catalog;
    use conprobe::services::ReplicaParams;

    // Blogger with a server-enforced 350 ms per-client interval: the
    // agents' 300 ms read cadence plus the write bursts will trip it.
    let mut topo = catalog::topology(ServiceKind::Blogger);
    for (_, params) in &mut topo.replicas {
        *params = ReplicaParams {
            rate_limit: Some(conprobe::sim::SimDuration::from_millis(350)),
            ..params.clone()
        };
    }
    let mut config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test1);
    config.service_override = Some(topo);
    let r = run_one_test(&config, 2);
    assert!(r.completed, "backoff must keep the test progressing");
    assert_eq!(r.writes_total, 6, "all writes eventually accepted");
    assert!(
        r.analysis.is_clean(),
        "throttling must not fabricate anomalies: {:?}",
        r.analysis.observations.first()
    );
}

/// A link flap, a loss burst, and a crash/restart cycle composed in one
/// declarative plan. Timings sit inside Test 2's measured phase (which
/// opens ~2.5 s into the run and lasts ~36 s for FB Group).
fn combined_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(FaultEvent::LossBurst {
            scope: LinkScope::All,
            at: SimTime::from_secs(5),
            duration: SimDuration::from_secs(8),
            loss: 0.15,
        })
        .with(FaultEvent::LinkFlap {
            // Ireland↔Virginia carries the Ireland agent's heartbeats and
            // its service traffic (FB Group's replicas are US-side), so
            // the flap demonstrably blocks messages.
            scope: LinkScope::Between(Region::Ireland, Region::Virginia),
            at: SimTime::from_secs(6),
            down_for: SimDuration::from_secs(2),
            up_for: SimDuration::from_secs(2),
            flaps: 2,
        })
        .with(FaultEvent::CrashCycle {
            target: 0,
            at: SimTime::from_secs(12),
            down_for: SimDuration::from_secs(3),
            up_for: SimDuration::from_secs(2),
            cycles: 2,
        })
}

/// The headline property of the fault engine: a plan composing a link
/// flap, a loss burst, and a crash/restart cycle executes against a full
/// test, every interference is accounted in the ledger, and replaying the
/// same world seed and plan reproduces the run byte for byte — trace,
/// anomaly verdicts, ledger, and agent health all identical.
#[test]
fn combined_fault_plan_is_deterministic_and_accounted() {
    let mut config = TestConfig::paper(ServiceKind::FacebookGroup, TestKind::Test2);
    config.fault_plan = combined_plan(99);

    let a = run_one_test(&config, 11);
    let b = run_one_test(&config, 11);

    // The plan ran: network interference and all four crash/recover
    // transitions (2 cycles) are on the ledger.
    assert!(a.fault_ledger.net.dropped > 0, "loss burst must drop messages");
    assert!(a.fault_ledger.net.blocked > 0, "link flap must block messages");
    assert_eq!(a.fault_ledger.actions.len(), 4, "crash,recover × 2 cycles");
    assert_eq!(a.fault_ledger.skipped_actions, 0);
    assert!(a.fault_ledger.any_interference());

    // The run still concludes with a full-size trace.
    assert_eq!(a.reads_per_agent.len(), 3);
    assert!(a.writes_total >= 1);

    // Byte-identical replay.
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.duration_secs, b.duration_secs);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.salvaged, b.salvaged);
    assert_eq!(a.fault_ledger.net, b.fault_ledger.net);
    assert_eq!(a.fault_ledger.actions, b.fault_ledger.actions);
    assert_eq!(a.fault_ledger.agent_rpc, b.fault_ledger.agent_rpc);
    for kind in AnomalyKind::ALL {
        assert_eq!(a.analysis.count(kind), b.analysis.count(kind), "{kind}");
    }

    // A different fault seed reshuffles the probabilistic interference
    // without touching the deterministic service transitions.
    config.fault_plan = combined_plan(100);
    let c = run_one_test(&config, 11);
    assert_eq!(c.fault_ledger.actions.len(), 4);
    assert_ne!(
        a.fault_ledger.net, c.fault_ledger.net,
        "a different plan seed should redraw the loss coin flips"
    );
}

/// Graceful coordinator degradation: an agent whose region is cut off
/// mid-test (covering its service path *and* its heartbeat path) is
/// quarantined after the bounded Stop-retry budget, and the coordinator
/// salvages a coherent partial trace from the surviving agents instead of
/// hanging.
#[test]
fn severed_agent_is_quarantined_and_the_trace_salvaged() {
    let mut config = TestConfig::paper(ServiceKind::FacebookGroup, TestKind::Test1);
    // Cut every Tokyo link shortly after the synchronized start and keep
    // it down past the end of the run. Clock sync (~2.5 s) and the start
    // margin complete on a healthy network, so the agent is mid-test —
    // beaconing and writing — when the link dies.
    config.start_margin = SimDuration::from_secs(2);
    config.fault_plan = FaultPlan::new(1).with(FaultEvent::LinkFlap {
        scope: LinkScope::Touching(Region::Tokyo),
        at: SimTime::from_secs(5),
        down_for: SimDuration::from_secs(300),
        up_for: SimDuration::ZERO,
        flaps: 1,
    });
    config.max_duration = SimDuration::from_secs(20);

    let r = run_one_test(&config, 4);

    assert!(!r.completed, "a severed agent must not count as a clean run");
    assert!(r.salvaged, "the partial trace must be flagged as salvaged");
    assert_eq!(r.agent_health.len(), 3);
    let tokyo = &r.agent_health[1];
    assert!(tokyo.quarantined, "the unreachable agent is quarantined");
    assert!(!tokyo.log_collected);
    assert!(tokyo.heartbeats > 0, "it was alive before the cut");
    for i in [0usize, 2] {
        assert!(r.agent_health[i].log_collected, "agent {i} salvaged");
        assert!(!r.agent_health[i].quarantined);
        assert!(r.reads_per_agent[i] > 0, "agent {i} contributed reads");
    }
    assert_eq!(r.reads_per_agent[1], 0, "no log, no reads in the trace");
    assert!(r.fault_ledger.net.blocked > 0, "the cut is on the ledger");

    // Degradation is as deterministic as a healthy run.
    let r2 = run_one_test(&config, 4);
    assert_eq!(r.trace, r2.trace);
    assert_eq!(r.salvaged, r2.salvaged);
    assert_eq!(
        r.agent_health.iter().map(|h| h.quarantined).collect::<Vec<_>>(),
        r2.agent_health.iter().map(|h| h.quarantined).collect::<Vec<_>>()
    );
}
