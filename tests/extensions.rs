//! The two methodology extensions beyond the paper's evaluation:
//! agent-role rotation (§V's validation side-experiment) and white-box
//! replica probing (§VI future work).

use conprobe::core::AnomalyKind;
use conprobe::harness::proto::TestKind;
use conprobe::harness::runner::{run_one_test, TestConfig};
use conprobe::services::ServiceKind;
use conprobe::sim::net::Region;
use conprobe::sim::SimDuration;

/// §V, monotonic writes: "in test 1 Ireland is the last client to issue its
/// sequence of two write operations, terminating the test as soon as these
/// become visible. Thus, it has a smaller opportunity window … This
/// observation is supported by … additional experiments … where we rotated
/// the location of each agent."
///
/// With rotation, the *role* (last writer) keeps the small opportunity
/// window regardless of which location holds it.
#[test]
fn rotation_shows_last_writer_effect_is_role_not_location() {
    let runs = 8u64;
    for rotation in 0..3u32 {
        let mut config = TestConfig::paper(ServiceKind::FacebookGroup, TestKind::Test1);
        config.rotation = rotation;
        // MW observations *witnessing* a given writer's reversed pair:
        // the last writer's pair exists only in the test's final moments
        // ("it has a smaller opportunity window for detecting this
        // anomaly"), the first writer's pair is exposed for the whole test.
        let mut first_pair = 0usize;
        let mut last_pair = 0usize;
        for seed in 0..runs {
            let r = run_one_test(&config, seed);
            assert_eq!(
                r.agent_regions[0],
                Region::AGENTS[rotation as usize],
                "rotation must relocate agent 0"
            );
            for obs in r.analysis.of_kind(AnomalyKind::MonotonicWrites) {
                match obs.witnesses.first().map(|w| w.author.0) {
                    Some(0) => first_pair += 1,
                    Some(2) => last_pair += 1,
                    _ => {}
                }
            }
        }
        assert!(
            last_pair < first_pair,
            "rotation {rotation}: the last writer's pair ({last_pair}) must \
             be observed less than the first writer's ({first_pair}), \
             regardless of which location holds the role"
        );
    }
}

/// White-box ground truth vs black-box perception:
///
/// * Facebook Feed replicas order by exact timestamps and converge fast —
///   its overwhelming black-box *order* divergence is a read-path artifact
///   ("explained by the semantics of the service", §V).
/// * Google+ replicas genuinely hold different orders until anti-entropy —
///   its order divergence is real.
#[test]
fn whitebox_separates_true_divergence_from_read_path_artifacts() {
    // Facebook Feed: black-box OD ~100 %, white-box OD = none.
    let mut config = TestConfig::paper(ServiceKind::FacebookFeed, TestKind::Test2);
    config.whitebox_period = Some(SimDuration::from_millis(100));
    let mut blackbox_od = 0;
    let mut whitebox_od = 0;
    for seed in 0..4 {
        let r = run_one_test(&config, seed);
        let report = r.whitebox.as_ref().expect("probe enabled");
        assert!(report.samples > 0);
        if r.has(AnomalyKind::OrderDivergence) {
            blackbox_od += 1;
        }
        if report.any_true_order_divergence() {
            whitebox_od += 1;
        }
    }
    assert_eq!(blackbox_od, 4, "agents perceive order divergence in every test");
    assert_eq!(whitebox_od, 0, "replicas never truly order-diverge on FB Feed — it's the ranking");

    // Google+: when agents see order divergence, the replicas really did
    // hold different orders at some point.
    let mut config = TestConfig::paper(ServiceKind::GooglePlus, TestKind::Test2);
    config.whitebox_period = Some(SimDuration::from_millis(100));
    let mut confirmed = 0;
    let mut seen = 0;
    for seed in 0..12 {
        let r = run_one_test(&config, seed);
        if r.has(AnomalyKind::OrderDivergence) {
            seen += 1;
            if r.whitebox.as_ref().unwrap().any_true_order_divergence() {
                confirmed += 1;
            }
        }
    }
    assert!(seen > 0, "some Google+ tests show order divergence");
    assert_eq!(
        confirmed, seen,
        "every black-box order divergence on Google+ is true replica divergence"
    );
}

/// Content divergence on Google+ is true replica divergence (slow
/// propagation), and the white-box windows bound the black-box ones from
/// above: clients cannot perceive divergence longer than it truly existed
/// (plus one read period of detection slack).
#[test]
fn whitebox_content_windows_bound_blackbox_windows() {
    let mut config = TestConfig::paper(ServiceKind::GooglePlus, TestKind::Test2);
    config.whitebox_period = Some(SimDuration::from_millis(50));
    let r = run_one_test(&config, 17);
    let report = r.whitebox.as_ref().unwrap();
    if r.has(AnomalyKind::ContentDivergence) {
        assert!(
            report.any_true_content_divergence(),
            "perceived content divergence must be backed by replica state"
        );
    }
    // Aggregate durations: black-box total ≤ white-box total + slack for
    // read-period quantization on both ends of each window.
    let blackbox_total: i64 = r.analysis.content_windows.iter().map(|w| w.total_nanos()).sum();
    let whitebox_total: i64 = report.content_windows.iter().map(|w| w.total_nanos()).sum();
    let windows: i64 = r.analysis.content_windows.iter().map(|w| w.windows.len() as i64).sum();
    let slack = (windows + 1) * 2 * 1_300_000_000; // 2×(300ms..1s) per window end
    assert!(
        blackbox_total <= whitebox_total + slack,
        "black-box {blackbox_total}ns vs white-box {whitebox_total}ns (+{slack})"
    );
}
