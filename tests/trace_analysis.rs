//! Trace portability and analysis stability: results can be exported,
//! re-imported and re-analyzed bit-for-bit — the workflow for analyzing a
//! trace captured elsewhere (e.g. a future real-HTTP agent, per the paper's
//! future-work direction of extending the methodology to other services).

use conprobe::core::checkers::WfrMode;
use conprobe::core::{analyze, AnomalyKind, CheckerConfig, TestTrace};
use conprobe::harness::proto::{test1_trigger_pairs, TestKind};
use conprobe::harness::runner::{run_one_test, TestConfig};
use conprobe::json::{FromJson, ToJson};
use conprobe::services::ServiceKind;
use conprobe::store::PostId;

#[test]
fn traces_round_trip_through_json() {
    let config = TestConfig::paper(ServiceKind::FacebookFeed, TestKind::Test1);
    let r = run_one_test(&config, 21);
    let json = r.trace.to_json().to_compact();
    let parsed = conprobe::json::parse(&json).expect("parse");
    let back: TestTrace<PostId> = FromJson::from_json(&parsed).expect("deserialize");
    assert_eq!(r.trace, back);

    // Re-analysis of the imported trace reproduces the original findings.
    let checker = CheckerConfig {
        wfr_mode: WfrMode::TriggerPairs(test1_trigger_pairs(3)),
        compute_windows: true,
    };
    let re = analyze(&back, &checker);
    for kind in AnomalyKind::ALL {
        assert_eq!(re.count(kind), r.analysis.count(kind), "{kind} count changed after round trip");
    }
    assert_eq!(re.content_windows, r.analysis.content_windows);
    assert_eq!(re.order_windows, r.analysis.order_windows);
}

#[test]
fn analysis_is_a_pure_function_of_the_trace() {
    let config = TestConfig::paper(ServiceKind::GooglePlus, TestKind::Test2);
    let r = run_one_test(&config, 8);
    let a = analyze(&r.trace, &CheckerConfig::default());
    let b = analyze(&r.trace, &CheckerConfig::default());
    assert_eq!(a.observations, b.observations);
    assert_eq!(a.content_windows, b.content_windows);
}

#[test]
fn disabling_windows_does_not_change_observations() {
    let config = TestConfig::paper(ServiceKind::GooglePlus, TestKind::Test2);
    let r = run_one_test(&config, 9);
    let with = analyze(&r.trace, &CheckerConfig::default());
    let without =
        analyze(&r.trace, &CheckerConfig { compute_windows: false, ..Default::default() });
    assert_eq!(with.observations, without.observations);
    assert!(without.content_windows.is_empty());
}

/// Observation metadata is well-formed on real traces: observers exist,
/// divergence pairs are ordered, timestamps lie within the trace.
#[test]
fn observation_metadata_is_well_formed() {
    let config = TestConfig::paper(ServiceKind::FacebookFeed, TestKind::Test2);
    let r = run_one_test(&config, 13);
    let first = r.trace.ops().first().expect("non-empty").invoke;
    let last = r.trace.ops().iter().map(|o| o.response).max().unwrap();
    for obs in &r.analysis.observations {
        assert!(obs.agent.0 < 3);
        assert!(obs.at >= first && obs.at <= last, "{obs}");
        assert!(!obs.witnesses.is_empty());
        if matches!(obs.kind, AnomalyKind::ContentDivergence | AnomalyKind::OrderDivergence) {
            let other = obs.other_agent.expect("divergence names a pair");
            assert!(obs.agent < other, "pairs are normalized");
        }
    }
}
