//! The methodology applied to a primary-backup system with local reads
//! (reference topology beyond the paper).
//!
//! Expected profile: the primary serializes all writes (single order ⇒ no
//! order divergence, no monotonic-writes inversions between *different*
//! clients' views), backups apply the primary's FIFO stream (views are
//! prefixes of one log ⇒ no mutual content divergence), but a client's
//! read may hit its local backup before its own acknowledged write
//! replicates back — read-your-writes staleness is the design's one
//! anomaly.

use conprobe::core::AnomalyKind;
use conprobe::harness::proto::TestKind;
use conprobe::harness::runner::{run_one_test, TestConfig};
use conprobe::services::catalog::topology_primary_backup;
use conprobe::services::ServiceKind;

fn pb_config(kind: TestKind, repl_delay_ms: u64) -> TestConfig {
    let mut config = TestConfig::paper(ServiceKind::Blogger, kind);
    config.service_override = Some(topology_primary_backup(repl_delay_ms));
    config
}

#[test]
fn primary_backup_completes_both_tests() {
    for kind in [TestKind::Test1, TestKind::Test2] {
        let r = run_one_test(&pb_config(kind, 100), 1);
        assert!(r.completed, "{kind}");
        let expected_writes = if kind == TestKind::Test1 { 6 } else { 3 };
        assert_eq!(r.writes_total, expected_writes);
    }
}

#[test]
fn slow_replication_shows_up_as_read_your_writes_only_divergence_wise() {
    // With a slow primary→backup stream, RYW violations appear, but the
    // single-log structure forbids order divergence and mutual content
    // divergence.
    let mut ryw = 0;
    for seed in 0..6 {
        let r = run_one_test(&pb_config(TestKind::Test2, 900), seed);
        if r.has(AnomalyKind::ReadYourWrites) {
            ryw += 1;
        }
        assert!(
            !r.has(AnomalyKind::OrderDivergence),
            "seed {seed}: one serialization order exists"
        );
        assert!(
            !r.has(AnomalyKind::ContentDivergence),
            "seed {seed}: backup views are prefixes of the primary log"
        );
    }
    assert!(ryw >= 3, "slow replication must surface RYW staleness ({ryw}/6)");
}

#[test]
fn fast_replication_is_clean() {
    // With replication much faster than the read period, even RYW
    // disappears: the design degenerates to observably-strong behaviour.
    for seed in 0..4 {
        let r = run_one_test(&pb_config(TestKind::Test1, 5), seed);
        assert!(
            !r.has(AnomalyKind::OrderDivergence)
                && !r.has(AnomalyKind::ContentDivergence)
                && !r.has(AnomalyKind::MonotonicReads),
            "seed {seed}: {:?}",
            r.analysis.observations.first()
        );
    }
}

#[test]
fn backups_never_regress_reads() {
    // Monotonic reads hold by construction: a backup's state only grows,
    // in primary order.
    for seed in 0..6 {
        let r = run_one_test(&pb_config(TestKind::Test2, 500), seed);
        assert!(
            !r.has(AnomalyKind::MonotonicReads),
            "seed {seed}: FIFO apply cannot un-show an event"
        );
    }
}
