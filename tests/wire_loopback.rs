//! Live serve + probe over real loopback sockets (ISSUE 5 acceptance
//! bar).
//!
//! These tests run the whole wire stack end to end on `127.0.0.1`: a
//! [`WireServer`] hosting a catalog service on wall-clock time, real
//! probe-agent threads with skewed clocks synced over the wire, and the
//! *unmodified* `analyze()` / journal pipeline consuming the resulting
//! trace. A seeded staleness window must surface as a detected
//! read-your-writes anomaly; a clean single-replica service must analyze
//! clean; a draining server must never leave a client mid-frame.

use conprobe::core::anomaly::AnomalyKind;
use conprobe::harness::journal::{self, Journal, RecoveredEntry};
use conprobe::harness::proto::TestKind;
use conprobe::harness::runner::TestConfig;
use conprobe::services::live::StaleWindow;
use conprobe::services::ServiceKind;
use conprobe::wire::frame::{decode, Frame};
use conprobe::wire::{
    run_load, run_probe, run_probe_with_live, LiveEvent, LoadConfig, ProbeConfig, ServeConfig,
    WireClient, WireServer,
};
use conprobe_obs::MetricsRegistry;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("conprobe-wire-{tag}-{}.jsonl", std::process::id()))
}

fn probe_endpoints(
    server: &WireServer,
    agents: usize,
) -> Vec<(conprobe::sim::net::Region, std::net::SocketAddr)> {
    server.addrs().iter().take(agents).copied().collect()
}

/// A seeded stale-read window on the served replica must flow through
/// sockets, clock sync, and trace merging into a *detected*
/// read-your-writes anomaly — the paper's core observable, measured
/// live.
#[test]
fn seeded_stale_window_is_detected_by_the_unmodified_checkers() {
    let server = WireServer::start(&ServeConfig {
        stale_window: Some(StaleWindow { replica: 0, lag_nanos: 3_000_000_000 }),
        ..ServeConfig::loopback(ServiceKind::Blogger, 11)
    })
    .expect("bind");
    let config = ProbeConfig::loopback(
        ServiceKind::Blogger,
        TestKind::Test2,
        probe_endpoints(&server, 2),
        11,
    );
    let result = run_probe(&config).expect("probe");
    server.request_stop();
    server.join();

    assert!(result.completed, "both agents should finish their read quota");
    assert!(
        result.analysis.has(AnomalyKind::ReadYourWrites),
        "the 3 s stale window must hide each agent's own write from its reads"
    );
    // The trace is a standard TestTrace: every agent logged its write
    // plus its full read quota.
    assert_eq!(result.writes_total, 2);
    assert!(result.reads_per_agent.iter().all(|&r| r >= config.reads_target));
}

/// The live tap sees every operation the merged trace contains, in an
/// order a per-agent merge can reconstruct: replaying the tapped events
/// through the streaming analyzer yields *exactly* the analysis the
/// batch pass computes — including the stale window's injected
/// anomalies — and the tap does not perturb the measurement itself.
#[test]
fn live_tap_replays_into_the_exact_batch_analysis() {
    let server = WireServer::start(&ServeConfig {
        stale_window: Some(StaleWindow { replica: 0, lag_nanos: 3_000_000_000 }),
        ..ServeConfig::loopback(ServiceKind::Blogger, 11)
    })
    .expect("bind");
    let config = ProbeConfig::loopback(
        ServiceKind::Blogger,
        TestKind::Test2,
        probe_endpoints(&server, 2),
        11,
    );
    let (tx, rx) = std::sync::mpsc::channel();
    let result = run_probe_with_live(&config, Some(tx)).expect("probe");
    server.request_stop();
    server.join();

    // The channel is unbounded, so draining after the run sees the
    // complete feed; all senders are gone, so iteration terminates.
    let mut per_agent: Vec<Vec<conprobe::core::trace::OpRecord<conprobe::store::PostId>>> =
        vec![Vec::new(), Vec::new()];
    let mut dones = 0u32;
    for event in rx {
        match event {
            LiveEvent::Op(op) => per_agent[op.agent.0 as usize].push(op),
            LiveEvent::Done(_) => dones += 1,
        }
    }
    assert_eq!(dones, 2, "one Done per agent");
    for ops in &per_agent {
        assert!(
            ops.windows(2).all(|w| w[0].invoke <= w[1].invoke),
            "each agent's stream arrives invoke-ordered"
        );
    }

    // Concatenate agent-by-agent and stable-sort — precisely what
    // `TestTrace::new` does to the merged record logs.
    let mut ops: Vec<_> = per_agent.concat();
    ops.sort_by_key(|o| (o.invoke, o.response));
    assert_eq!(ops.len(), result.trace.len(), "the tap saw every merged operation");

    let mut analysis_config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test2);
    analysis_config.agent_regions = config.endpoints.iter().map(|(r, _)| *r).collect();
    let mut analyzer = conprobe::core::StreamingAnalyzer::new(
        &conprobe::harness::runner::checker_config_for(&analysis_config),
    );
    for op in &ops {
        analyzer.push_event(op);
    }
    let streamed = analyzer.finish();
    assert_eq!(
        streamed.observations, result.analysis.observations,
        "streamed replay of the tap equals the batch analysis"
    );
    assert!(streamed.has(AnomalyKind::ReadYourWrites), "the stale window still surfaces");
}

/// A clean single-replica service probed over loopback analyzes clean,
/// and the resulting `TestResult` journals and resumes exactly like a
/// simulated one.
#[test]
fn clean_blogger_probe_is_anomaly_free_and_journals_round_trip() {
    let server = WireServer::start(&ServeConfig::loopback(ServiceKind::Blogger, 7)).expect("bind");
    let config = ProbeConfig::loopback(
        ServiceKind::Blogger,
        TestKind::Test1,
        probe_endpoints(&server, 2),
        7,
    );
    let result = run_probe(&config).expect("probe");
    server.request_stop();
    server.join();

    assert!(result.completed, "test 1 chain should complete on loopback");
    assert!(
        result.analysis.is_clean(),
        "single fresh replica cannot show anomalies: {:?}",
        result.analysis.observations
    );
    // Clock sync over a real wire. The reported error folds in the real
    // epoch shift between server start and probe start (milliseconds,
    // correctly measured by the estimator), so compare against a loose
    // bound that still catches a dropped ±2 s seeded offset; the claimed
    // uncertainty is pure RTT/2 and must stay loopback-tiny.
    for (err, unc) in result.clock_error_nanos.iter().zip(&result.clock_uncertainty_nanos) {
        assert!(*err < 500_000_000, "clock error {err} ns is not loopback-plausible");
        assert!(*unc < 50_000_000, "claimed uncertainty {unc} ns is not loopback-plausible");
    }

    // Journal + resume: the probe-mode cell splices like any sim cell.
    let path = temp("journal");
    let _ = std::fs::remove_file(&path);
    let cell = format!("wire/{}", journal::cell_id(ServiceKind::Blogger, TestKind::Test1));
    {
        let j = Journal::create(&path).expect("create journal");
        j.append_completed(&cell, 0, config.seed, &result).expect("append");
    }
    let (_j, recovery) = Journal::resume(&path).expect("resume");
    let completed = recovery.completed_for(&cell);
    let (seed, payload) = completed.get(&0).expect("instance 0 recovered");
    assert_eq!(*seed, config.seed);
    let mut analysis_config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test1);
    analysis_config.agent_regions = result.agent_regions.clone();
    let restored = journal::result_from_json(&analysis_config, payload).expect("parse");
    assert_eq!(restored.trace.ops(), result.trace.ops(), "journaled trace is byte-faithful");
    assert_eq!(restored.analysis.observations.len(), result.analysis.observations.len());
    match recovery.records.first().map(|r| &r.entry) {
        Some(RecoveredEntry::Completed(_)) | None => {}
        other => panic!("unexpected journal entry {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

/// Hammer the server from raw sockets while a drain is triggered
/// mid-flight: every byte stream a client observes must parse into whole
/// frames with nothing left over — the server never stops mid-frame.
#[test]
fn graceful_drain_never_splits_a_frame() {
    let server = WireServer::start(&ServeConfig::loopback(ServiceKind::Blogger, 3)).expect("bind");
    let addr = server.addrs()[0].1;

    let mut hammers = Vec::new();
    for _ in 0..4 {
        hammers.push(std::thread::spawn(move || -> (u64, usize) {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut buf = Vec::new();
            let mut scratch = [0u8; 4096];
            let mut frames = 0u64;
            loop {
                if stream.write_all(&Frame::Read.encode()).is_err() {
                    break; // server closed during drain — fine
                }
                // Read until one whole response frame (or EOF).
                let eof = loop {
                    match decode(&buf).expect("client never sees a corrupt stream") {
                        Some((_frame, consumed)) => {
                            buf.drain(..consumed);
                            frames += 1;
                            break false;
                        }
                        None => match stream.read(&mut scratch) {
                            Ok(0) => break true,
                            Ok(n) => buf.extend_from_slice(&scratch[..n]),
                            Err(_) => break true, // reset during drain
                        },
                    }
                };
                if eof {
                    break;
                }
            }
            (frames, buf.len())
        }));
    }

    std::thread::sleep(Duration::from_millis(150));
    // Drain via the wire itself: a client sends `stop`.
    let mut stopper = WireClient::connect(addr, Duration::from_secs(5)).expect("connect stopper");
    stopper.stop_server().expect("stop acked");
    let metrics = server.join();

    for h in hammers {
        let (frames, leftover) = h.join().expect("hammer thread");
        assert_eq!(leftover, 0, "a drained stream must end exactly on a frame boundary");
        assert!(frames > 0, "hammer made progress before the drain");
    }
    assert!(metrics.contains("wire.server.frames"), "final metrics dump present: {metrics}");
    assert!(metrics.contains("wire.server.stops"), "{metrics}");
}

/// The stop file is the signal-free drain trigger for `conprobe serve`.
#[test]
fn stop_file_appearance_drains_the_server() {
    let stop_file = temp("stopfile");
    let _ = std::fs::remove_file(&stop_file);
    let server = WireServer::start(&ServeConfig {
        stop_file: Some(stop_file.clone()),
        ..ServeConfig::loopback(ServiceKind::Blogger, 5)
    })
    .expect("bind");
    assert!(!server.stopping());
    std::fs::write(&stop_file, b"drain\n").expect("write stop file");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !server.stopping() {
        assert!(std::time::Instant::now() < deadline, "stop file not noticed");
        std::thread::sleep(Duration::from_millis(20));
    }
    server.join();
    let _ = std::fs::remove_file(&stop_file);
}

/// The closed-loop load generator sustains traffic against a loopback
/// server and reports a coherent latency distribution.
#[test]
fn load_generator_reports_throughput_and_latency() {
    let server = WireServer::start(&ServeConfig::loopback(ServiceKind::Blogger, 9)).expect("bind");
    let metrics = MetricsRegistry::new();
    let report = run_load(
        &LoadConfig {
            connections: 4,
            duration: Duration::from_millis(500),
            seed_posts: 8,
            ..LoadConfig::loopback(server.addrs()[0].1)
        },
        &metrics,
    )
    .expect("load");
    server.request_stop();
    server.join();

    assert!(report.ops > 0, "load made progress");
    assert_eq!(report.errors, 0, "loopback run should be error-free");
    assert!(report.ops_per_sec > 0.0);
    assert!(report.p50_nanos <= report.p99_nanos);
    let json = metrics.to_json().to_pretty();
    assert!(json.contains("wire.load.latency_nanos"), "{json}");
}

/// A probe agent whose endpoint dies mid-cadence — connection dropped
/// *and* reconnects refused, so the client's backoff budget runs out —
/// is quarantined while the study still emits a salvaged trace from the
/// surviving agents (plus whatever the dead agent logged before the
/// failure).
#[test]
fn dead_agent_connection_is_quarantined_and_the_study_salvaged() {
    use conprobe::store::{AuthorId, PostId};
    use std::net::TcpListener;

    // A fake cpw1 endpoint: serves the handshake, the Cristian probes
    // and the first few measurement ops, then drops the connection and
    // stops listening entirely. Reconnect attempts get ECONNREFUSED.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake endpoint");
    let fake_addr = listener.local_addr().expect("fake addr");
    let dying = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept probe agent");
        drop(listener); // every reconnect from here on is refused
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut served = 0u32;
        // 1 handshake hello + 5 clock probes + the initial write + two
        // reads, then die with the next op in flight.
        'serve: while served < 9 {
            let n = match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            buf.extend_from_slice(&chunk[..n]);
            while let Ok(Some((frame, used))) = decode(&buf) {
                buf.drain(..used);
                let reply = match frame {
                    Frame::Hello { proto } => {
                        Frame::HelloAck { proto, server_clock_nanos: 0, service: "blogger".into() }
                    }
                    Frame::Write { author, seq, .. } => {
                        Frame::WriteAck { id: PostId::new(AuthorId(author), seq).as_u64() }
                    }
                    Frame::Read => Frame::ReadOk { ids: vec![] },
                    _ => continue,
                };
                if stream.write_all(&reply.encode()).is_err() {
                    break 'serve;
                }
                served += 1;
                if served >= 9 {
                    break 'serve;
                }
            }
        }
        served
    });

    let server = WireServer::start(&ServeConfig::loopback(ServiceKind::Blogger, 21)).expect("bind");
    let mut endpoints = probe_endpoints(&server, 2);
    endpoints[1].1 = fake_addr;
    let config = ProbeConfig::loopback(ServiceKind::Blogger, TestKind::Test2, endpoints, 21);
    let result = run_probe(&config).expect("a single dead agent must not abort the study");
    server.request_stop();
    server.join();
    let served = dying.join().expect("fake endpoint thread");
    assert!(served >= 7, "fake endpoint should survive past the initial write, served {served}");

    assert!(result.salvaged, "a quarantined agent marks the result salvaged");
    assert!(!result.completed, "the dead agent cannot have finished its quota");
    assert!(!result.agent_health[0].quarantined, "the healthy agent stays in");
    assert!(result.agent_health[1].quarantined, "the dead agent is quarantined");
    assert!(result.agent_health[1].log_collected, "records logged before the failure are salvaged");
    assert!(
        result.reads_per_agent[0] >= config.reads_target,
        "the healthy agent finishes its full read quota: {:?}",
        result.reads_per_agent
    );
    assert!(
        result.reads_per_agent[1] < config.reads_target,
        "the dead agent stops early: {:?}",
        result.reads_per_agent
    );
    assert_eq!(result.writes_total, 2, "both Test 2 initial writes are in the trace");
}

/// Keyed clients on a sharded server address isolated logical objects:
/// a write to one key is visible to readers of that key and invisible
/// to every other key, wherever the shard ring placed them.
#[test]
fn keyed_clients_are_isolated_per_key_across_shards() {
    use conprobe::harness::transport::ServiceEndpoint;
    use conprobe::services::{ClientOp, OpResult};
    use conprobe::store::{AuthorId, Post, PostId};
    use conprobe_sim::LocalTime;

    let server = WireServer::start(&ServeConfig::loopback(ServiceKind::Blogger, 17)).expect("bind");
    assert!(server.shard_count() > 1, "loopback serve defaults to a sharded keyspace");
    let addr = server.addrs()[0].1;
    let mut client = WireClient::connect(addr, Duration::from_secs(5)).expect("connect");
    client.hello().expect("handshake");

    client.set_key(Some(7));
    let post = Post::new(PostId::new(AuthorId(1), 1), "keyed", LocalTime::from_nanos(1));
    let id = post.id;
    match client.call(ClientOp::Write(post)).expect("keyed write") {
        OpResult::WriteAck(acked) => assert_eq!(acked, id),
        other => panic!("expected write ack, got {other:?}"),
    }
    match client.call(ClientOp::Read).expect("keyed read") {
        OpResult::ReadOk(ids) => assert_eq!(ids, vec![id], "own-key read sees the write"),
        other => panic!("expected read ok, got {other:?}"),
    }
    // Sweep many other keys: none may leak the post, whether they land
    // on the same shard as key 7 or a different one.
    for other_key in (0..200u32).filter(|&k| k != 7) {
        client.set_key(Some(other_key));
        match client.call(ClientOp::Read).expect("other-key read") {
            OpResult::ReadOk(ids) => {
                assert!(ids.is_empty(), "key {other_key} must not see key 7's write: {ids:?}")
            }
            other => panic!("expected read ok, got {other:?}"),
        }
    }
    server.request_stop();
    server.join();
}

/// A keyed probe (all frames carrying an explicit keyspace key, routed
/// through the shard ring) must analyze exactly like the un-keyed
/// legacy path: clean on a clean server, and a seeded stale window must
/// still surface as a detected read-your-writes anomaly. Keys in
/// different shards behave identically.
#[test]
fn keyed_probe_analyzes_identically_to_the_unkeyed_path() {
    // Clean server: the legacy path and two keyed probes (keys far
    // apart, so they generally land on different shards) all complete
    // with identical verdicts and write counts.
    let mut write_totals = Vec::new();
    for key in [None, Some(3), Some(411)] {
        let server =
            WireServer::start(&ServeConfig::loopback(ServiceKind::Blogger, 29)).expect("bind");
        let mut config = ProbeConfig::loopback(
            ServiceKind::Blogger,
            TestKind::Test1,
            probe_endpoints(&server, 2),
            29,
        );
        config.key = key;
        let result = run_probe(&config).expect("probe");
        server.request_stop();
        server.join();
        assert!(result.completed, "key {key:?}: probe must complete");
        assert!(
            result.analysis.is_clean(),
            "key {key:?}: clean server must analyze clean: {:?}",
            result.analysis.observations
        );
        assert!(result.writes_total > 0, "key {key:?}");
        write_totals.push(result.writes_total);
    }
    assert!(
        write_totals.windows(2).all(|w| w[0] == w[1]),
        "keyed and un-keyed probes run the identical cadence: {write_totals:?}"
    );

    // Stale server: the keyed path must not mask the seeded anomaly.
    let server = WireServer::start(&ServeConfig {
        stale_window: Some(StaleWindow { replica: 0, lag_nanos: 3_000_000_000 }),
        ..ServeConfig::loopback(ServiceKind::Blogger, 11)
    })
    .expect("bind");
    let mut config = ProbeConfig::loopback(
        ServiceKind::Blogger,
        TestKind::Test2,
        probe_endpoints(&server, 2),
        11,
    );
    config.key = Some(42);
    let result = run_probe(&config).expect("probe");
    server.request_stop();
    server.join();
    assert!(result.completed);
    assert!(
        result.analysis.has(AnomalyKind::ReadYourWrites),
        "the stale window must be detected through the keyed path too"
    );
}

/// The pipelined load generator: many in-flight requests per connection
/// over several sweeper threads and keys, with FIFO responses verified
/// per connection — a healthy loopback run reports zero transport,
/// ordering and decode errors and a coherent p50 ≤ p99 ≤ p999 ladder.
#[test]
fn pipelined_load_reports_clean_percentiles_and_error_counters() {
    let server = WireServer::start(&ServeConfig::loopback(ServiceKind::Blogger, 31)).expect("bind");
    let metrics = MetricsRegistry::new();
    let report = run_load(
        &LoadConfig {
            connections: 32,
            pipeline: 8,
            threads: 2,
            keys: 4,
            duration: Duration::from_millis(500),
            warmup: Duration::from_millis(100),
            seed_posts: 8,
            ..LoadConfig::loopback(server.addrs()[0].1)
        },
        &metrics,
    )
    .expect("load");
    server.request_stop();
    server.join();

    assert!(report.ops > 0, "pipelined load made progress");
    assert_eq!(report.errors, 0, "loopback run should be error-free");
    assert_eq!(report.ordering_errors, 0, "responses must come back FIFO per connection");
    assert_eq!(report.decode_errors, 0, "no corrupt frames on loopback");
    assert_eq!(report.conns_with_errors, 0);
    assert_eq!(report.max_conn_errors, 0);
    assert!(report.p50_nanos <= report.p99_nanos);
    assert!(report.p99_nanos <= report.p999_nanos);
    let json = metrics.to_json().to_pretty();
    assert!(json.contains("wire.load.ordering_errors"), "{json}");
    assert!(json.contains("wire.load.decode_errors"), "{json}");
}

/// The quorum control arm served over real sockets: `serve --service
/// quorum` bridges `QuorumReplica` through `LiveCluster` with
/// synchronous majority writes, so a live probe must analyze clean on
/// every checker — the wire-level counterpart of the simulated control
/// arm in `tests/quorum_replica.rs`.
#[test]
fn live_quorum_probe_is_anomaly_free_over_the_wire() {
    let server = WireServer::start(&ServeConfig::loopback(ServiceKind::Quorum, 13)).expect("bind");
    let config = ProbeConfig::loopback(
        ServiceKind::Quorum,
        TestKind::Test2,
        probe_endpoints(&server, 2),
        13,
    );
    let result = run_probe(&config).expect("probe");
    server.request_stop();
    server.join();

    assert!(result.completed, "both agents finish their read quota");
    assert!(!result.salvaged);
    assert!(
        result.analysis.is_clean(),
        "majority writes + majority reads must hide nothing from the checkers"
    );
    assert_eq!(result.writes_total, 2);
    assert!(result.reads_per_agent.iter().all(|&r| r >= config.reads_target));
}
