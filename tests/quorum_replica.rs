//! The majority-quorum control arm, end to end (ISSUE 6 acceptance bar).
//!
//! The `Quorum` service exists to prove the harness measures the
//! *services* and not itself: majority writes + majority reads +
//! crash-recovery state transfer with read fencing must come through
//! every checker clean, in clean runs and under the chaos plan's
//! crash/recover cycle alike. Under a fixed seed the whole thing —
//! trace, recovery narration, state-transfer stream hash — must be
//! byte-deterministic.

use conprobe::cli::chaos_plan;
use conprobe::core::AnomalyKind;
use conprobe::harness::proto::TestKind;
use conprobe::harness::runner::{run_one_test, TestConfig, TestResult};
use conprobe::services::ServiceKind;
use conprobe_obs::{EventLog, ObsSink, Severity};

/// The control arm: no faults, every checker, multiple seeds and both
/// test designs — zero anomaly observations, always.
#[test]
fn clean_quorum_runs_are_anomaly_free_across_all_six_checkers() {
    for kind in [TestKind::Test1, TestKind::Test2] {
        for seed in [1, 7, 42] {
            let config = TestConfig::paper(ServiceKind::Quorum, kind);
            let r = run_one_test(&config, seed);
            assert!(r.completed, "{kind} seed {seed} must complete");
            for anomaly in AnomalyKind::ALL {
                assert_eq!(
                    r.analysis.count(anomaly),
                    0,
                    "{kind} seed {seed}: {anomaly} observed against the strong control arm"
                );
            }
            assert!(r.analysis.is_clean());
        }
    }
}

/// Runs the level-3 chaos cell (loss burst + degraded link + link flap +
/// a replica crash/recover cycle) against the quorum service, capturing
/// the service event log.
fn chaos_crash_run(seed: u64) -> (TestResult, Vec<String>) {
    let sink = ObsSink::with_log(
        EventLog::new(4096).with_min_severity(Severity::Info).with_target_prefix("services"),
    );
    let mut config = TestConfig::paper(ServiceKind::Quorum, TestKind::Test2);
    config.fault_plan = chaos_plan(3, seed);
    config.obs = Some(sink.clone());
    let r = run_one_test(&config, seed);
    let events = sink.log.drain().iter().map(|e| e.render()).collect();
    (r, events)
}

/// The crash arm: replica 1 dies at 7 s and rejoins at 11 s. Read
/// fencing must hold — the recovering replica serves nothing until its
/// catch-up stream passes the rejoin watermark, so the run stays
/// anomaly-free — and the recovery must narrate a completed state
/// transfer.
#[test]
fn crash_and_recover_stays_clean_and_completes_a_state_transfer() {
    let (r, events) = chaos_crash_run(42);
    assert!(r.completed, "the survivors keep both quorums available");
    for anomaly in AnomalyKind::ALL {
        assert_eq!(
            r.analysis.count(anomaly),
            0,
            "{anomaly} observed across a fenced crash/recover cycle:\n{events:#?}"
        );
    }
    // The fault ledger shows the cycle actually executed.
    assert!(
        r.fault_ledger.actions.len() >= 2,
        "crash + recover must be in the ledger: {:?}",
        r.fault_ledger.actions
    );
    assert!(events.iter().any(|e| e.contains("crashed")), "crash event missing: {events:#?}");
    assert!(
        events.iter().any(|e| e.contains("state transfer complete")),
        "recovery must complete a state transfer: {events:#?}"
    );
}

/// Same seed, same plan → byte-identical trace and byte-identical
/// recovery narration, stream hash included. This pins the state
/// transfer (snapshot request, `cpj1` catch-up frames, fence lift) as
/// fully deterministic.
#[test]
fn crash_recovery_state_transfer_is_byte_deterministic() {
    let (r1, e1) = chaos_crash_run(42);
    let (r2, e2) = chaos_crash_run(42);
    assert_eq!(r1.trace, r2.trace, "traces must be byte-identical under a fixed seed");
    assert_eq!(e1, e2, "recovery narration (incl. stream hash) must be deterministic");
    assert!(
        e1.iter().any(|e| e.contains("stream hash")),
        "the transfer narration carries the catch-up stream hash: {e1:#?}"
    );
}

/// The paper's campaign matrix — and with it every golden fingerprint —
/// deliberately excludes the control arm.
#[test]
fn the_paper_matrix_does_not_gain_the_control_arm() {
    assert_eq!(ServiceKind::ALL.len(), 4);
    assert!(!ServiceKind::ALL.contains(&ServiceKind::Quorum));
    assert!(ServiceKind::CATALOG.contains(&ServiceKind::Quorum));
}
